open Adaptive_sim
open Adaptive_net
open Adaptive_mech
open Adaptive_core
open Adaptive_chaos

type config = {
  sessions : int;
  churn_rounds : int;
  seed : int;
  payload_bytes : int;
  open_window : Time.t;
  admission : Mantts.admission_policy option;
  monitored_share : int;
  wire : bool;
  estimator : Stats.estimator;
  steer : Steer.policy option;
  chaos : Fault.schedule option;
  check_invariants : bool;
  scs_transform : (Scs.t -> Scs.t) option;
  link_bps : float;
  link_mtu : int;
  link_queue_pkts : int;
  host_speed : float;
}

let default_config ~sessions ~seed =
  {
    sessions;
    churn_rounds = 2;
    seed;
    payload_bytes = 2000;
    open_window = Time.sec 1.0;
    admission = None;
    monitored_share = 10;
    wire = false;
    (* Reservoir is the golden default; the goldens pin its quantiles.
       Megaswarm-scale runs switch to [Stats.P2] for flat metric memory. *)
    estimator = Stats.Reservoir;
    steer = None;
    chaos = None;
    check_invariants = false;
    scs_transform = None;
    link_bps = 1e9;
    link_mtu = 65535;
    link_queue_pkts = 4096;
    host_speed = 1.0;
  }

type outcome = {
  offered : int;
  admitted : int;
  degraded : int;
  refused : int;
  closed : int;
  delivered_msgs : int;
  delivered_bytes : int;
  goodput_bytes : int;  (* application-useful bytes: see the .mli *)
  peak_live : int;
  sim_time : Time.t;
  events_fired : int;
  digest : int64;
  demux_probes_mean : float;
  demux_probes_p99 : float;
  occupancy_p99 : float;
  table_capacity : int;
  timewait_drops : int;
  wire_report : Session.Wire.report option;
  steer_stats : (int * int) option;  (* (swaps applied, blocked) *)
  faults_injected : int;
  violations : Invariant.violation list;
  unites : Unites.t;
}

(* A modern host CPU: the 1992 defaults (100 us/packet) would serialize
   10k sessions' traffic into minutes of simulated backlog and measure the
   host model, not the dispatcher.  [speed] scales it further: the two
   endpoints stand for a whole population of hosts, so benches that scale
   the link with the session count scale the CPU the same way — at
   2 us/packet a fixed host saturates near 140k pkts/s and quietly
   becomes the experiment.  The speed knob lives in [Host] itself so it
   also divides the per-byte checksum work the session layer charges —
   pre-scaling only the constructor costs here would leave that charge
   as an unscaled floor (~18 us per full-size checksummed frame, a
   ~55k pkts/s ceiling no matter how fast the host claims to be). *)
let fast_host ~speed engine =
  Host.create ~per_packet:(Time.us 2) ~per_byte_copy:(Time.ns 1) ~copies:1 ~speed
    engine

(* Short-declared sessions (the bulk) skip the MANTTS policy monitor;
   every [monitored_share]-th is long-declared and keeps one. *)
let short_duration = Time.ms 600
let long_duration = Time.minutes 2

let run cfg =
  if cfg.sessions <= 0 then invalid_arg "Swarm.run: sessions must be positive";
  let stack =
    Adaptive.create_stack ~seed:cfg.seed ~metric_reservoir:64
      ~metric_estimator:cfg.estimator ()
  in
  let engine = stack.Adaptive.engine in
  let unites = stack.Adaptive.unites in
  let mantts = Adaptive.mantts stack in
  let wire_handle =
    if cfg.wire then Some (Session.Wire.install stack.Adaptive.net) else None
  in
  Mantts.set_admission mantts cfg.admission;
  let client_cpu = fast_host ~speed:cfg.host_speed engine
  and server_cpu = fast_host ~speed:cfg.host_speed engine in
  let client = Adaptive.add_host ~host_cpu:client_cpu stack "swarm-client" in
  let server = Adaptive.add_host ~host_cpu:server_cpu stack "swarm-server" in
  let lan =
    Profiles.custom ~name:"swarm-lan" ~bandwidth_bps:cfg.link_bps
      ~propagation:(Time.us 50) ~queue_pkts:cfg.link_queue_pkts
      ~mtu:cfg.link_mtu ()
  in
  Adaptive.connect_hosts stack client server [ lan ];
  let trace = Trace.create ~log_capacity:256 () in
  Unites.attach_trace unites trace;
  let client_disp = Mantts.dispatcher (Mantts.entity mantts client) in
  let server_disp = Mantts.dispatcher (Mantts.entity mantts server) in
  let steer = Option.map (fun policy -> Steer.create ~policy mantts) cfg.steer in
  let checker =
    if cfg.check_invariants then
      (* No [?trace]: the checker's per-delivery events would swamp the
         digest; violations surface through [violations] instead. *)
      Some (Invariant.create ~engine ~unites ~mantts ())
    else None
  in
  let injector =
    Option.map
      (fun schedule ->
        Fault.install ~engine ~trace ~unites
          { Fault.links = [ lan ]; tail_links = [];
            hosts = [ client_cpu; server_cpu ]; routing = None }
          schedule)
      cfg.chaos
  in
  (match (checker, injector) with
  | Some c, Some inj -> Invariant.set_injector c inj
  | (Some _ | None), _ -> ());
  Option.iter
    (fun c ->
      Invariant.attach_dispatcher c client_disp;
      Invariant.attach_dispatcher c server_disp;
      Invariant.start c)
    checker;
  let offered = ref 0 and admitted = ref 0 in
  let degraded = ref 0 and refused = ref 0 in
  let delivered_msgs = ref 0 and delivered_bytes = ref 0 in
  let peak_live = ref 0 in
  (* Goodput accounting: both endpoints of a connection share the wire
     connection id, so the client side records what each session promised
     its application (bytes requested, whether the class tolerates loss)
     and the server side accumulates what actually arrived. *)
  let conn_contract = Hashtbl.create 1024 in
  let conn_received = Hashtbl.create 1024 in
  Mantts.set_app_handler (Mantts.entity mantts server) (fun session d ->
      incr delivered_msgs;
      delivered_bytes := !delivered_bytes + d.Session.bytes;
      let conn = Session.id session in
      Hashtbl.replace conn_received conn
        (d.Session.bytes
        + Option.value ~default:0 (Hashtbl.find_opt conn_received conn));
      Trace.event trace ~at:d.Session.delivered_at ~category:"deliver"
        ~detail:(Printf.sprintf "%d:%d" (Session.id session) d.Session.bytes));
  let base_rng = Rng.create (cfg.seed lxor 0x53574152 (* "SWAR" *)) in
  let apps = Array.of_list Workloads.all in
  let acd_for slot =
    let app = apps.(slot mod Array.length apps) in
    let monitored = cfg.monitored_share > 0 && slot mod cfg.monitored_share = 0 in
    let qos =
      {
        (Workloads.qos app) with
        Qos.duration = Some (if monitored then long_duration else short_duration);
      }
    in
    (* Keep per-session whitebox collection to setup latency only: at ten
       thousand sessions, unrestricted per-session instrumentation would
       dominate memory, and the swarm pseudo-session already captures the
       system-level picture. *)
    Acd.make
      ~tmc:{ Acd.collect = [ Unites.Setup_latency ]; sample_every = Time.sec 1.0 }
      ~participants:[ server ] ~qos ()
  in
  let rec attempt slot round ~at =
    ignore (Engine.schedule engine ~at (fun () -> open_now slot round))
  and open_now slot round =
    incr offered;
    let rng = Rng.split_ix base_rng ((slot * 131) + round) in
    let name = Printf.sprintf "sw-%d-%d" slot round in
    let acd = acd_for slot in
    let lifetime = Time.ms (300 + Rng.int rng 500) in
    match
      Mantts.try_open_session ~name ?scs_transform:cfg.scs_transform mantts
        ~src:client ~acd ()
    with
    | Error _ ->
      incr refused;
      Trace.event trace
        ~at:(Engine.now engine)
        ~category:"refuse"
        ~detail:(string_of_int slot);
      (* Offered load keeps pressing: retry the slot's next round. *)
      if round < cfg.churn_rounds then
        attempt slot (round + 1) ~at:(Time.add (Engine.now engine) (Time.ms 200))
    | Ok (session, decision) ->
      incr admitted;
      if decision = Mantts.Degraded then begin
        incr degraded;
        Trace.event trace
          ~at:(Engine.now engine)
          ~category:"degrade"
          ~detail:(string_of_int (Session.id session))
      end;
      Trace.event trace
        ~at:(Engine.now engine)
        ~category:"open"
        ~detail:(string_of_int (Session.id session));
      Option.iter
        (fun st ->
          Steer.watch st session
            ~loss_tolerant:(acd.Acd.qos.Qos.loss_tolerance > 0.0))
        steer;
      let live = Session.Dispatcher.session_count client_disp in
      if live > !peak_live then peak_live := live;
      let bytes = max 64 ((cfg.payload_bytes / 2) + Rng.int rng cfg.payload_bytes) in
      Hashtbl.replace conn_contract (Session.id session)
        (bytes, acd.Acd.qos.Qos.loss_tolerance > 0.0);
      Session.send session ~bytes ();
      ignore
        (Engine.schedule engine
           ~at:(Time.add (Engine.now engine) lifetime)
           (fun () ->
             Trace.event trace
               ~at:(Engine.now engine)
               ~category:"close"
               ~detail:(string_of_int (Session.id session));
             Mantts.close_session mantts session;
             if round < cfg.churn_rounds then
               attempt slot (round + 1)
                 ~at:(Time.add (Engine.now engine) (Time.ms 100))))
  in
  for slot = 0 to cfg.sessions - 1 do
    attempt slot 0 ~at:(slot * cfg.open_window / cfg.sessions)
  done;
  (* Generous ceiling; the run quiesces long before it in practice. *)
  let horizon =
    Time.add cfg.open_window
      (Time.sec (3.0 *. float_of_int (cfg.churn_rounds + 1)))
  in
  Adaptive.run stack ~until:horizon;
  Option.iter Invariant.finish checker;
  let summary_of m =
    Option.value
      ~default:(Stats.summarize (Stats.create ~reservoir:8 ()))
      (Unites.stats unites ~session:Unites.swarm_session m)
  in
  let probes = summary_of Unites.Demux_probes in
  let occupancy = summary_of Unites.Table_occupancy in
  Option.iter (fun h -> Session.Wire.observe h unites) wire_handle;
  {
    offered = !offered;
    admitted = !admitted;
    degraded = !degraded;
    refused = !refused;
    closed = Trace.counter trace "close";
    delivered_msgs = !delivered_msgs;
    delivered_bytes = !delivered_bytes;
    goodput_bytes =
      (* Loss-tolerant classes use whatever arrived; a fully-reliable
         application's transfer is only useful if all of it arrived (a
         file with holes is not partial goodput, it is waste). *)
      Hashtbl.fold
        (fun conn (requested, tolerant) acc ->
          let got =
            Option.value ~default:0 (Hashtbl.find_opt conn_received conn)
          in
          if tolerant then acc + min got requested
          else if got >= requested then acc + requested
          else acc)
        conn_contract 0;
    peak_live = !peak_live;
    sim_time = Adaptive.now stack;
    events_fired = (Engine.counters engine).Engine.events_fired;
    digest = Trace.hash trace;
    demux_probes_mean = probes.Stats.mean;
    demux_probes_p99 = probes.Stats.p99;
    occupancy_p99 = occupancy.Stats.p99;
    table_capacity = Session.Dispatcher.table_capacity client_disp;
    timewait_drops =
      int_of_float (Unites.total unites ~session:Unites.swarm_session Unites.Timewait_drops);
    wire_report = Option.map Session.Wire.report wire_handle;
    steer_stats =
      Option.map (fun st -> (Steer.swap_count st, Steer.blocked_count st)) steer;
    faults_injected =
      (match injector with Some inj -> Fault.injected inj | None -> 0);
    violations = (match checker with Some c -> Invariant.violations c | None -> []);
    unites;
  }

let pp_outcome fmt o =
  Format.fprintf fmt
    "@[<v>swarm: offered=%d admitted=%d degraded=%d refused=%d closed=%d@,\
     delivered: %d msgs, %d bytes; peak live=%d; table capacity=%d@,\
     demux probes: mean=%.3f p99=%.0f; occupancy p99=%.3f; timewait drops=%d@,\
     events=%d sim_time=%a digest=0x%Lx" o.offered o.admitted o.degraded
    o.refused o.closed o.delivered_msgs o.delivered_bytes o.peak_live
    o.table_capacity o.demux_probes_mean o.demux_probes_p99 o.occupancy_p99
    o.timewait_drops o.events_fired Time.pp o.sim_time o.digest;
  (match o.wire_report with
  | None -> ()
  | Some w ->
    Format.fprintf fmt
      "@,wire: encodes=%d decodes=%d rejects=%d fused_sums=%d pool_reuse=%.3f"
      w.Session.Wire.encodes w.Session.Wire.decodes w.Session.Wire.rejects
      w.Session.Wire.fused_sums w.Session.Wire.pool_reuse_rate);
  (match o.steer_stats with
  | None -> ()
  | Some (applied, blocked) ->
    Format.fprintf fmt
      "@,steer: swaps=%d blocked=%d faults=%d violations=%d goodput=%d"
      applied blocked o.faults_injected (List.length o.violations)
      o.goodput_bytes);
  Format.fprintf fmt "@]"
