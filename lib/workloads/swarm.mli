(** SWARM — many-session churn workload.

    Drives one client/server host pair through open → transfer → close
    churn across the Table-1 application mix, at a configurable target of
    concurrent sessions (hundreds to tens of thousands).  Every random
    draw derives from the seed, and every lifecycle event (open, degrade,
    refuse, close, deliver) is recorded into a trace whose FNV-1a digest
    proves two runs replay-equal — the determinism witness of the
    [e11_swarm_scale] experiment.

    Most sessions declare a sub-second duration, so MANTTS skips their
    policy monitor (§4.1.1); every [monitored_share]-th session is
    long-declared and exercises the shared monitor tick. *)

open Adaptive_sim
open Adaptive_core
open Adaptive_chaos

type config = {
  sessions : int;  (** Target number of session slots (concurrent). *)
  churn_rounds : int;  (** Close/reopen cycles per slot after the first
                           open (0 = open once). *)
  seed : int;  (** Master seed for every random draw. *)
  payload_bytes : int;  (** Application bytes each session sends. *)
  open_window : Time.t;  (** Opens are staggered across this interval. *)
  admission : Mantts.admission_policy option;
      (** Admission policy installed on the MANTTS instance. *)
  monitored_share : int;  (** Every n-th slot declares a long duration and
                              keeps a policy monitor. *)
  wire : bool;  (** Run the stack in wire-true mode: PDUs cross the
                    network as real bytes through the fused zero-copy
                    codec path.  On this lossless topology the trace
                    digest must equal the value-mode digest. *)
  estimator : Stats.estimator;
      (** Quantile estimator for the run's UNITES repository.
          [Reservoir] (the default) is what the goldens pin; [P2] caps
          metric memory at a few floats per (session, metric) for
          megaswarm-scale churn. *)
  steer : Steer.policy option;
      (** When set, every admitted session is put under a STEER
          closed-loop policy engine with this policy (loss-tolerant
          applications get the wider semantics-trading action space). *)
  chaos : Fault.schedule option;
      (** When set, the schedule is installed against the swarm link and
          both host CPUs — the chaos backdrop the steered population is
          measured against. *)
  check_invariants : bool;
      (** Attach the chaos invariant checker (delivery oracles at both
          dispatchers, counter monotonicity, the MANTTS/STEER
          flap-cooldown oracle) and report its violations. *)
  scs_transform : (Scs.t -> Scs.t) option;
      (** Pin every admitted session's derived SCS through this rewrite —
          the static-configuration baseline arms of the steering
          experiments ({!Mantts.try_open_session}'s [scs_transform]). *)
  link_bps : float;
      (** Swarm link bandwidth.  The 1 Gb/s default keeps the link
          effectively unconstrained (the historical swarm behavior, which
          the goldens pin); the steering experiments shrink it so that
          congestion storms create genuine scarcity. *)
  link_mtu : int;
      (** Swarm link MTU.  The 65535 default means a whole swarm payload
          fits one segment (the historical behavior); a realistic MTU
          makes sessions multi-segment so that recovery-scheme dynamics
          (window occupancy, FEC grouping, go-back-n flooding) are
          exercised. *)
  link_queue_pkts : int;
      (** Swarm link queue depth in packets.  The 4096 default buffers
          whole retransmission floods as delay (the historical behavior);
          a realistic shallow queue makes overload tail-drop, so ARQ
          floods during loss bursts become self-punishing. *)
  host_speed : float;
      (** CPU speed multiplier for the two endpoint hosts (default 1.0 =
          2 us/packet + 1 ns/byte), applied through [Host.create ~speed]
          so it also divides the per-byte checksum work the session
          layer charges.  The two endpoints stand for a whole population
          of hosts, so experiments that scale [link_bps] with the
          session count should scale this the same way — an unscaled
          host CPU (the checksum charge alone is a ~55k pkts/s ceiling)
          quietly becomes the binding constraint of a 10k-session run,
          starving handshakes on an uncongested wire. *)
}

val default_config : sessions:int -> seed:int -> config
(** 2 churn rounds, 2000-byte payloads, a 1 s open window, no admission
    policy, every 10th slot monitored, value (non-wire) mode, reservoir
    quantiles, no steering, no chaos, no invariant checking, no SCS
    pinning, a 1 Gb/s link with a 65535-byte MTU, host speed 1.0. *)

type outcome = {
  offered : int;  (** Open attempts (including churn reopens). *)
  admitted : int;  (** Sessions actually opened. *)
  degraded : int;  (** Opens admitted with a lightened configuration. *)
  refused : int;  (** Opens refused by admission control. *)
  closed : int;  (** Sessions closed back down. *)
  delivered_msgs : int;  (** Segments handed to the server application. *)
  delivered_bytes : int;
  goodput_bytes : int;
      (** Application-useful bytes.  Loss-tolerant sessions contribute
          whatever arrived (capped at what they asked to send); a
          fully-reliable session contributes its requested bytes only if
          the whole transfer arrived — a reliable transfer with holes is
          waste, not partial goodput.  This is the differential metric of
          the steering experiments. *)
  peak_live : int;  (** Largest live-session count seen at the client. *)
  sim_time : Time.t;  (** Simulated time at quiescence. *)
  events_fired : int;  (** Engine events executed over the run. *)
  digest : int64;  (** FNV-1a trace digest — the determinism witness. *)
  demux_probes_mean : float;
      (** Mean probes per connection-table lookup (1.0 = every lookup hit
          its first slot). *)
  demux_probes_p99 : float;
  occupancy_p99 : float;  (** p99 of the table load-factor samples. *)
  table_capacity : int;  (** Final client-side table capacity. *)
  timewait_drops : int;  (** Late segments absorbed in time-wait. *)
  wire_report : Session.Wire.report option;
      (** Wire-path counters when the run was wire-true. *)
  steer_stats : (int * int) option;
      (** [(swaps applied, cooldown-blocked decisions)] when the run was
          steered. *)
  faults_injected : int;  (** Chaos faults applied over the run. *)
  violations : Invariant.violation list;
      (** Invariant-oracle violations (empty when checking was off —
          and expected empty when it was on). *)
  unites : Unites.t;  (** The run's metric repository (for reports). *)
}

val run : config -> outcome
(** Build a fresh stack and execute the workload to quiescence. *)

val pp_outcome : Format.formatter -> outcome -> unit
(** The swarm whitebox report: admission accounting, demux cost,
    occupancy and the trace digest. *)
