(** SWARM — many-session churn workload.

    Drives one client/server host pair through open → transfer → close
    churn across the Table-1 application mix, at a configurable target of
    concurrent sessions (hundreds to tens of thousands).  Every random
    draw derives from the seed, and every lifecycle event (open, degrade,
    refuse, close, deliver) is recorded into a trace whose FNV-1a digest
    proves two runs replay-equal — the determinism witness of the
    [e11_swarm_scale] experiment.

    Most sessions declare a sub-second duration, so MANTTS skips their
    policy monitor (§4.1.1); every [monitored_share]-th session is
    long-declared and exercises the shared monitor tick. *)

open Adaptive_sim
open Adaptive_core

type config = {
  sessions : int;  (** Target number of session slots (concurrent). *)
  churn_rounds : int;  (** Close/reopen cycles per slot after the first
                           open (0 = open once). *)
  seed : int;  (** Master seed for every random draw. *)
  payload_bytes : int;  (** Application bytes each session sends. *)
  open_window : Time.t;  (** Opens are staggered across this interval. *)
  admission : Mantts.admission_policy option;
      (** Admission policy installed on the MANTTS instance. *)
  monitored_share : int;  (** Every n-th slot declares a long duration and
                              keeps a policy monitor. *)
  wire : bool;  (** Run the stack in wire-true mode: PDUs cross the
                    network as real bytes through the fused zero-copy
                    codec path.  On this lossless topology the trace
                    digest must equal the value-mode digest. *)
  estimator : Stats.estimator;
      (** Quantile estimator for the run's UNITES repository.
          [Reservoir] (the default) is what the goldens pin; [P2] caps
          metric memory at a few floats per (session, metric) for
          megaswarm-scale churn. *)
}

val default_config : sessions:int -> seed:int -> config
(** 2 churn rounds, 2000-byte payloads, a 1 s open window, no admission
    policy, every 10th slot monitored, value (non-wire) mode, reservoir
    quantiles. *)

type outcome = {
  offered : int;  (** Open attempts (including churn reopens). *)
  admitted : int;  (** Sessions actually opened. *)
  degraded : int;  (** Opens admitted with a lightened configuration. *)
  refused : int;  (** Opens refused by admission control. *)
  closed : int;  (** Sessions closed back down. *)
  delivered_msgs : int;  (** Segments handed to the server application. *)
  delivered_bytes : int;
  peak_live : int;  (** Largest live-session count seen at the client. *)
  sim_time : Time.t;  (** Simulated time at quiescence. *)
  events_fired : int;  (** Engine events executed over the run. *)
  digest : int64;  (** FNV-1a trace digest — the determinism witness. *)
  demux_probes_mean : float;
      (** Mean probes per connection-table lookup (1.0 = every lookup hit
          its first slot). *)
  demux_probes_p99 : float;
  occupancy_p99 : float;  (** p99 of the table load-factor samples. *)
  table_capacity : int;  (** Final client-side table capacity. *)
  timewait_drops : int;  (** Late segments absorbed in time-wait. *)
  wire_report : Session.Wire.report option;
      (** Wire-path counters when the run was wire-true. *)
  unites : Unites.t;  (** The run's metric repository (for reports). *)
}

val run : config -> outcome
(** Build a fresh stack and execute the workload to quiescence. *)

val pp_outcome : Format.formatter -> outcome -> unit
(** The swarm whitebox report: admission accounting, demux cost,
    occupancy and the trace digest. *)
