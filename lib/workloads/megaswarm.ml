open Adaptive_sim
open Adaptive_net
open Adaptive_mech
open Adaptive_core
open Adaptive_fleet

type config = {
  sessions : int;
  partitions : int;
  shards : int;
  churn_rounds : int;
  seed : int;
  payload_bytes : int;
  open_window : Time.t;
  monitored_share : int;
  cross_share : int;
  wan_latency : Time.t;
  wan_spread : Time.t;
  session_cap : int option;
  steer : Steer.policy option;
}

(* Deterministic per-pair one-way WAN latency: the base plus a spread
   term that depends only on the ordered (src, dst) pair, so SHARD's
   per-pair lookahead matrix and the stamped arrival times agree by
   construction at every shard count.  [wan_spread = zero] collapses to
   the uniform-latency WAN. *)
let pair_latency cfg ~src ~dst =
  if cfg.wan_spread = Time.zero then cfg.wan_latency
  else Time.add cfg.wan_latency (((31 * src) + (17 * dst)) mod (cfg.wan_spread + 1))

let default_config ~sessions ~seed =
  {
    sessions;
    partitions = 4;
    shards = 1;
    churn_rounds = 1;
    seed;
    payload_bytes = 2000;
    open_window = Time.sec 1.0;
    monitored_share = 10;
    cross_share = 16;
    wan_latency = Time.ms 5;
    wan_spread = Time.zero;
    session_cap = None;
    steer = None;
  }

type outcome = {
  offered : int;
  admitted : int;
  refused : int;
  cross_opened : int;
  delivered_msgs : int;
  delivered_bytes : int;
  wan_exchanged : int;
  steer_swaps : int;
  peak_live : int;
  events_fired : int;
  sim_time : Time.t;
  digest : int64;
  partition_digests : int64 list;
  demux_probes_mean_max : float;
  monitor_ticks : int;
  monitor_walked : int;
  tw_sweeps : int;
  tw_expired : int;
  sync_windows : int;
  sync_skipped : int;
  shard_wall_s : float list;
  stage_minor_words : (string * float) list;
  unites_reports : string list;
}

(* Cross-partition PDUs travel the WAN as plain values: the frame, its
   size, and the addresses as the {e receiver} must see them.  Virtual
   addresses above [wan_base] name (partition, role) pairs; they are
   routeless in every local topology, so the dispatcher's replies to a
   remote peer leave through the same remote hook that delivered it. *)
let wan_base = 0x10000

type wan_msg = {
  w_src : Network.addr;  (* virtual (partition, role) of the sender *)
  w_dst : Network.addr;  (* real address in the destination partition *)
  w_bytes : int;
  w_sent : Time.t;
  w_pdu : Pdu.t;
}

type partition = {
  p_index : int;
  p_stack : Adaptive.stack;
  p_client : Network.addr;
  p_server : Network.addr;
  p_trace : Trace.t;
  p_steer : Steer.t option;  (* partition-local steering engine: state
                                never crosses the barrier, so the shard
                                digest-parity witness is unaffected *)
  mutable p_outbox : (Time.t * int * wan_msg) list;  (* newest first *)
  mutable p_offered : int;
  mutable p_admitted : int;
  mutable p_refused : int;
  mutable p_cross : int;
  mutable p_delivered_msgs : int;
  mutable p_delivered_bytes : int;
  mutable p_peak_live : int;
}

let fast_host engine =
  Host.create ~per_packet:(Time.us 2) ~per_byte_copy:(Time.ns 1) ~copies:1 engine

let short_duration = Time.ms 600
let long_duration = Time.minutes 2

(* Virtual address of (partition, role): role 0 = client, 1 = server. *)
let virtual_addr ~partition ~role = wan_base + (partition * 2) + role

let cross_scs = { Scs.default with Scs.connection = Params.Implicit }

let build_partition cfg ~index ~seed =
  let stack =
    Adaptive.create_stack ~seed ~metric_reservoir:64
      ~metric_estimator:Stats.P2 ()
  in
  let engine = stack.Adaptive.engine in
  (* Stripe connection ids by partition so a cross-partition session can
     never collide with a local one in the remote connection table — and
     so the id space is identical however many shards execute. *)
  Network.set_conn_stripe stack.Adaptive.net ~stride:cfg.partitions ~offset:index;
  let mantts = Adaptive.mantts stack in
  let client = Adaptive.add_host ~host_cpu:(fast_host engine) stack "ms-client" in
  let server = Adaptive.add_host ~host_cpu:(fast_host engine) stack "ms-server" in
  Adaptive.connect_hosts stack client server
    [ Profiles.custom ~name:"ms-lan" ~bandwidth_bps:1e9 ~propagation:(Time.us 50)
        ~queue_pkts:4096 () ];
  let trace = Trace.create ~log_capacity:256 () in
  Unites.attach_trace stack.Adaptive.unites trace;
  (* GIGASWARM memory bound: cap the per-session metric population so the
     UNITES tables — and the rendered report — stay O(cap) however many
     sessions churn through.  Overflowed sessions fold into one shared
     bucket; totals are preserved.  The trace digest never sees UNITES
     routing, so the cap cannot perturb the parity oracle. *)
  (match cfg.session_cap with
  | Some cap -> Unites.set_session_cap stack.Adaptive.unites cap
  | None -> ());
  let p =
    {
      p_index = index;
      p_stack = stack;
      p_client = client;
      p_server = server;
      p_trace = trace;
      p_steer = Option.map (fun policy -> Steer.create ~policy mantts) cfg.steer;
      p_outbox = [];
      p_offered = 0;
      p_admitted = 0;
      p_refused = 0;
      p_cross = 0;
      p_delivered_msgs = 0;
      p_delivered_bytes = 0;
      p_peak_live = 0;
    }
  in
  Mantts.set_app_handler (Mantts.entity mantts server) (fun session d ->
      p.p_delivered_msgs <- p.p_delivered_msgs + 1;
      p.p_delivered_bytes <- p.p_delivered_bytes + d.Session.bytes;
      (* Same bytes as [Printf.sprintf "%d:%d"] without the format
         interpreter: this string is folded into the trace digest per
         delivered message. *)
      Trace.event trace ~at:d.Session.delivered_at ~category:"deliver"
        ~detail:
          (string_of_int (Session.id session) ^ ":" ^ string_of_int d.Session.bytes));
  p

(* Install partition [p]'s remote hook: map the unrouted virtual
   destination to (partition, real address), the real source to its
   virtual name, stamp the WAN arrival, and queue for the next barrier. *)
let install_wan cfg parts p =
  let net = p.p_stack.Adaptive.net in
  let engine = p.p_stack.Adaptive.engine in
  Network.set_remote net (fun ~src ~dst ~bytes pdu ->
      if dst >= wan_base && dst < wan_base + (cfg.partitions * 2) then begin
        let target = (dst - wan_base) / 2 in
        let role = (dst - wan_base) mod 2 in
        let dest_part = parts.(target) in
        let real_dst =
          if role = 1 then dest_part.p_server else dest_part.p_client
        in
        let src_role = if src = p.p_server then 1 else 0 in
        let now = Engine.now engine in
        p.p_outbox <-
          ( Time.add now (pair_latency cfg ~src:p.p_index ~dst:target),
            target,
            {
              w_src = virtual_addr ~partition:p.p_index ~role:src_role;
              w_dst = real_dst;
              w_bytes = bytes;
              w_sent = now;
              w_pdu = pdu;
            } )
          :: p.p_outbox
      end)

let schedule_opens cfg p ~local_slots =
  let stack = p.p_stack in
  let engine = stack.Adaptive.engine in
  let mantts = Adaptive.mantts stack in
  let client_disp = Mantts.dispatcher (Mantts.entity mantts p.p_client) in
  let base_rng =
    Rng.split_ix (Rng.create (cfg.seed lxor 0x4D534D53 (* "MSMS" *))) p.p_index
  in
  let apps = Array.of_list Workloads.all in
  let napps = Array.length apps in
  (* One ACD per (application, monitored) shape, shared across every open:
     descriptors are immutable and MANTTS only reads them, and handing the
     same physical value back makes the MANTTS synthesis memo's structural
     key comparison short-circuit on pointer equality. *)
  let acd_cache = Array.make (2 * napps) None in
  let acd_for slot =
    let app_ix = slot mod napps in
    let monitored =
      cfg.monitored_share > 0 && slot mod cfg.monitored_share = 0
    in
    let key = (2 * app_ix) + Bool.to_int monitored in
    match acd_cache.(key) with
    | Some acd -> acd
    | None ->
      let qos =
        {
          (Workloads.qos apps.(app_ix)) with
          Qos.duration = Some (if monitored then long_duration else short_duration);
        }
      in
      let acd =
        Acd.make
          ~tmc:{ Acd.collect = [ Unites.Setup_latency ]; sample_every = Time.sec 1.0 }
          ~participants:[ p.p_server ] ~qos ()
      in
      acd_cache.(key) <- Some acd;
      acd
  in
  (* Global stagger: partition [p] owns global slots p, p+P, p+2P, … so
     offered load is phase-interleaved across partitions exactly as one
     flat swarm would see it.  The +1 ns keeps the very first injection
     strictly inside the first conservative window. *)
  let open_at slot =
    1 + (((slot * cfg.partitions) + p.p_index) * cfg.open_window / cfg.sessions)
  in
  let open_cross slot round =
    p.p_cross <- p.p_cross + 1;
    let peer_part = (p.p_index + 1) mod cfg.partitions in
    let peer = virtual_addr ~partition:peer_part ~role:1 in
    let name = Printf.sprintf "xms-%d-%d-%d" p.p_index slot round in
    let session =
      Session.connect ~name client_disp ~peers:[ peer ] ~scs:cross_scs ()
    in
    Trace.event p.p_trace ~at:(Engine.now engine) ~category:"xopen"
      ~detail:(string_of_int (Session.id session));
    Session.send session ~bytes:(max 64 (cfg.payload_bytes / 2)) ();
    Engine.schedule_anon engine
      ~at:(Time.add (Engine.now engine) short_duration)
      (fun () ->
        Trace.event p.p_trace ~at:(Engine.now engine) ~category:"xclose"
          ~detail:(string_of_int (Session.id session));
        Session.close session)
  in
  let rec attempt slot round ~at =
    Engine.schedule_anon engine ~at (fun () -> open_now slot round)
  and open_now slot round =
    p.p_offered <- p.p_offered + 1;
    let rng = Rng.split_ix base_rng ((slot * 131) + round) in
    let name =
      "ms-" ^ string_of_int p.p_index ^ "-" ^ string_of_int slot ^ "-"
      ^ string_of_int round
    in
    let acd = acd_for slot in
    let lifetime = Time.ms (300 + Rng.int rng 500) in
    (match Mantts.try_open_session ~name mantts ~src:p.p_client ~acd () with
    | Error _ ->
      p.p_refused <- p.p_refused + 1;
      Trace.event p.p_trace ~at:(Engine.now engine) ~category:"refuse"
        ~detail:(string_of_int slot);
      if round < cfg.churn_rounds then
        attempt slot (round + 1) ~at:(Time.add (Engine.now engine) (Time.ms 200))
    | Ok (session, _decision) ->
      p.p_admitted <- p.p_admitted + 1;
      Trace.event p.p_trace ~at:(Engine.now engine) ~category:"open"
        ~detail:(string_of_int (Session.id session));
      Option.iter
        (fun st ->
          Steer.watch st session
            ~loss_tolerant:(acd.Acd.qos.Qos.loss_tolerance > 0.0))
        p.p_steer;
      let live = Session.Dispatcher.session_count client_disp in
      if live > p.p_peak_live then p.p_peak_live <- live;
      let bytes =
        max 64 ((cfg.payload_bytes / 2) + Rng.int rng cfg.payload_bytes)
      in
      Session.send session ~bytes ();
      Engine.schedule_anon engine
        ~at:(Time.add (Engine.now engine) lifetime)
        (fun () ->
          Trace.event p.p_trace ~at:(Engine.now engine) ~category:"close"
            ~detail:(string_of_int (Session.id session));
          Mantts.close_session mantts session;
          if round < cfg.churn_rounds then
            attempt slot (round + 1)
              ~at:(Time.add (Engine.now engine) (Time.ms 100))));
    if cfg.cross_share > 0 && slot mod cfg.cross_share = 0 && round = 0 then
      open_cross slot round
  in
  for slot = 0 to local_slots - 1 do
    attempt slot 0 ~at:(open_at slot)
  done

let run ?clock cfg =
  if cfg.sessions <= 0 then invalid_arg "Megaswarm.run: sessions must be positive";
  if cfg.partitions < 1 then
    invalid_arg "Megaswarm.run: partitions must be >= 1";
  if cfg.shards < 1 then invalid_arg "Megaswarm.run: shards must be >= 1";
  let seeds = Array.of_list (Fleet.seeds_of ~master:cfg.seed ~n:cfg.partitions) in
  (* Stage allocation accounting: minor words on the coordinating domain
     per phase.  Authoritative at shards = 1 (OCaml 5 GC counters are
     per-domain); at shards > 1 the sim stage misses worker-domain
     allocation and is a lower bound.  The split keeps the hot-path
     figure (sim) separate from one-time setup and O(sessions) report
     rendering (reduce). *)
  let w0 = Gc.minor_words () in
  let parts =
    Array.init cfg.partitions (fun i ->
        build_partition cfg ~index:i ~seed:seeds.(i))
  in
  Array.iter (install_wan cfg parts) parts;
  let w_build = Gc.minor_words () in
  Array.iter
    (fun p ->
      let local_slots =
        (cfg.sessions / cfg.partitions)
        + (if p.p_index < cfg.sessions mod cfg.partitions then 1 else 0)
      in
      schedule_opens cfg p ~local_slots)
    parts;
  let w_sched = Gc.minor_words () in
  let horizon =
    Time.add cfg.open_window
      (Time.sec (3.0 *. float_of_int (cfg.churn_rounds + 1)))
  in
  let shard =
    Shard.create
      ~pair_lookahead:(fun ~src ~dst -> pair_latency cfg ~src ~dst)
      ~next_deadline:(fun i -> Engine.next_deadline parts.(i).p_stack.Adaptive.engine)
      ?clock ~lookahead:cfg.wan_latency ~partitions:cfg.partitions
      ~run_to:(fun i until ->
        Engine.run ~until parts.(i).p_stack.Adaptive.engine)
      ~drain:(fun i ->
        let msgs = List.rev parts.(i).p_outbox in
        parts.(i).p_outbox <- [];
        List.map
          (fun (at, dst, m) ->
            { Shard.out_at = at; out_dst = dst; out_payload = m })
          msgs)
      ~inject:(fun i ~at ~src:_ m ->
        let net = parts.(i).p_stack.Adaptive.net in
        Engine.schedule_anon parts.(i).p_stack.Adaptive.engine ~at (fun () ->
            Network.deliver_remote net ~src:m.w_src ~dst:m.w_dst
              ~bytes:m.w_bytes ~sent_at:m.w_sent m.w_pdu))
      ()
  in
  let wan_exchanged = Shard.run shard ~shards:cfg.shards ~until:horizon in
  let sync = Shard.last_stats shard in
  let w_sim = Gc.minor_words () in
  let digests =
    Array.to_list (Array.map (fun p -> Trace.hash p.p_trace) parts)
  in
  let probes_mean p =
    match
      Unites.stats p.p_stack.Adaptive.unites ~session:Unites.swarm_session
        Unites.Demux_probes
    with
    | Some s -> s.Stats.mean
    | None -> 0.0
  in
  let sum f = Array.fold_left (fun acc p -> acc + f p) 0 parts in
  (* Tick-cost telemetry across every partition: monitor-tick working
     set and coalesced time-wait sweeps (client + server dispatchers). *)
  let tick_stats p = Mantts.tick_stats (Adaptive.mantts p.p_stack) in
  let tw_stats p =
    let mantts = Adaptive.mantts p.p_stack in
    List.fold_left
      (fun (s, e) addr ->
        let disp = Mantts.dispatcher (Mantts.entity mantts addr) in
        let s', e' = Session.Dispatcher.tw_sweep_stats disp in
        (s + s', e + e'))
      (0, 0)
      [ p.p_client; p.p_server ]
  in
  let unites_reports =
    Array.to_list
      (Array.map
         (fun p ->
           Format.asprintf "partition %d@.%a" p.p_index Unites.report
             p.p_stack.Adaptive.unites)
         parts)
  in
  let stage_minor_words =
    [
      ("build", w_build -. w0);
      ("schedule", w_sched -. w_build);
      ("sim", w_sim -. w_sched);
      ("reduce", Gc.minor_words () -. w_sim);
    ]
  in
  {
    offered = sum (fun p -> p.p_offered);
    admitted = sum (fun p -> p.p_admitted);
    refused = sum (fun p -> p.p_refused);
    cross_opened = sum (fun p -> p.p_cross);
    delivered_msgs = sum (fun p -> p.p_delivered_msgs);
    delivered_bytes = sum (fun p -> p.p_delivered_bytes);
    wan_exchanged;
    steer_swaps =
      sum (fun p ->
          match p.p_steer with Some st -> Steer.swap_count st | None -> 0);
    peak_live = Array.fold_left (fun acc p -> max acc p.p_peak_live) 0 parts;
    events_fired =
      sum (fun p ->
          (Engine.counters p.p_stack.Adaptive.engine).Engine.events_fired);
    sim_time =
      Array.fold_left
        (fun acc p -> Time.max acc (Adaptive.now p.p_stack))
        Time.zero parts;
    digest = Fleet.combine_hashes digests;
    partition_digests = digests;
    demux_probes_mean_max =
      Array.fold_left (fun acc p -> Float.max acc (probes_mean p)) 0.0 parts;
    monitor_ticks = sum (fun p -> fst (tick_stats p));
    monitor_walked = sum (fun p -> snd (tick_stats p));
    tw_sweeps = sum (fun p -> fst (tw_stats p));
    tw_expired = sum (fun p -> snd (tw_stats p));
    sync_windows = sync.Shard.windows;
    sync_skipped = sync.Shard.skipped_spans;
    shard_wall_s = Array.to_list sync.Shard.shard_wall_s;
    stage_minor_words;
    unites_reports;
  }

let pp_outcome fmt o =
  if o.steer_swaps > 0 then
    Format.fprintf fmt "@[<v>steer swaps=%d@,@]" o.steer_swaps;
  Format.fprintf fmt
    "@[<v>megaswarm: offered=%d admitted=%d refused=%d cross=%d@,\
     delivered: %d msgs, %d bytes; peak live=%d; wan msgs=%d@,\
     demux probes mean (worst partition)=%.3f@,\
     monitor ticks=%d walked=%d; tw sweeps=%d expired=%d@,\
     sync windows=%d skipped spans=%d@,\
     events=%d sim_time=%a digest=0x%Lx@,\
     partition digests: %a@]"
    o.offered o.admitted o.refused o.cross_opened o.delivered_msgs
    o.delivered_bytes o.peak_live o.wan_exchanged o.demux_probes_mean_max
    o.monitor_ticks o.monitor_walked o.tw_sweeps o.tw_expired
    o.sync_windows o.sync_skipped
    o.events_fired Time.pp o.sim_time o.digest
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.fprintf fmt " ")
       (fun fmt d -> Format.fprintf fmt "0x%Lx" d))
    o.partition_digests
