type verdict = Deliver of Pdu.seg list | Buffered | Duplicate

(* Ring buffer of out-of-order segments keyed by sequence number modulo
   a power-of-two capacity.  Replaces a Map.Make(Int) whose node churn
   (add/remove per segment, full scans for gaps) dominated receiver-side
   allocation on the per-PDU hot path.

   Invariant: every buffered seq lies in [expected, highest]; the span
   never exceeds capacity (the ring grows by doubling). *)
type t = {
  ordering : Params.ordering;
  duplicates : Params.duplicates;
  mutable expected : int;
  mutable ring : Pdu.seg option array; (* received with seq >= expected *)
  mutable highest : int;
  mutable stored : int; (* buffered segments in [expected, highest] *)
}

let create ?(start = 0) ~ordering ~duplicates () =
  {
    ordering;
    duplicates;
    expected = start;
    ring = Array.make 16 None;
    highest = start - 1;
    stored = 0;
  }

let expected t = t.expected
let highest_seen t = t.highest

let slot t seq = seq land (Array.length t.ring - 1)
let get t seq = t.ring.(slot t seq)
let present t seq = seq >= t.expected && seq <= t.highest && get t seq <> None
let seen t seq = seq < t.expected || present t seq

(* Ensure capacity covers [expected, hi] and rehome buffered segments. *)
let ensure t hi =
  let need = hi - t.expected + 1 in
  if need > Array.length t.ring then begin
    let cap = ref (Array.length t.ring) in
    while !cap < need do
      cap := !cap * 2
    done;
    let fresh = Array.make !cap None in
    for seq = t.expected to t.highest do
      match get t seq with
      | None -> ()
      | Some _ as s -> fresh.(seq land (!cap - 1)) <- s
    done;
    t.ring <- fresh
  end

(* Advance the cumulative point over any contiguous run now present,
   removing the run from the buffer and returning it in order. *)
let drain_run t =
  let rec take acc =
    if t.expected > t.highest then List.rev acc
    else
      match get t t.expected with
      | None -> List.rev acc
      | Some seg ->
        t.ring.(slot t t.expected) <- None;
        t.stored <- t.stored - 1;
        t.expected <- t.expected + 1;
        take (seg :: acc)
  in
  take []

let offer t (seg : Pdu.seg) =
  let dup = seen t seg.Pdu.seq in
  if dup && t.duplicates = Params.Drop_duplicates then Duplicate
  else if dup then Deliver [ seg ]
  else begin
    let seq = seg.Pdu.seq in
    if seq > t.highest then begin
      ensure t seq;
      t.highest <- seq
    end;
    t.ring.(slot t seq) <- Some seg;
    t.stored <- t.stored + 1;
    match t.ordering with
    | Params.Unordered ->
      (* Release immediately, but keep cumulative bookkeeping for acks. *)
      let _ = drain_run t in
      Deliver [ seg ]
    | Params.Ordered ->
      let run = drain_run t in
      if run = [] then Buffered else Deliver run
  end

let missing t =
  let rec gaps seq acc =
    if seq > t.highest then List.rev acc
    else if get t seq <> None then gaps (seq + 1) acc
    else gaps (seq + 1) (seq :: acc)
  in
  gaps t.expected []

let sack_list t =
  let acc = ref [] in
  for seq = t.highest downto t.expected do
    if get t seq <> None then acc := seq :: !acc
  done;
  !acc

let advance_past_gap t =
  let rec first seq =
    if seq > t.highest then None
    else if get t seq <> None then Some seq
    else first (seq + 1)
  in
  match first t.expected with
  | None -> (0, [])
  | Some seq when seq <= t.expected -> (0, [])
  | Some seq ->
    let skipped = seq - t.expected in
    t.expected <- seq;
    (skipped, drain_run t)

let buffered_count t =
  match t.ordering with Params.Unordered -> 0 | Params.Ordered -> t.stored
