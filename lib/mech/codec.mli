(** Concrete wire format for transport PDUs.

    §2.2(C) criticizes the classic suites' control formats: TCP and TP4
    keep the checksum in the header (precluding simultaneous transmission
    and checksum computation) and use unaligned, variable-format fields.
    This codec is the "efficient control format" the paper calls for:

    - every header field is 32-bit aligned and fixed-size;
    - payload-bearing PDUs (data, parity) carry their 16-bit Internet
      checksum in the {e trailer}, so a sender can compute it while the
      packet streams out and a receiver can verify while it streams in;
    - control PDUs carry the checksum at a fixed header offset.

    [encode] always produces exactly {!Pdu.wire_bytes} bytes — a property
    the test suite enforces — so the simulator's size accounting and the
    byte-level format cannot drift apart.  Segments without payload are
    encoded with zero filler of the declared length. *)

type error =
  | Truncated  (** Fewer bytes than the header or declared lengths need. *)
  | Bad_type of int  (** Unknown PDU type tag. *)
  | Bad_checksum  (** Verification failed: the PDU was damaged. *)

val error_to_string : error -> string
(** Human-readable rendering. *)

val encode : Pdu.t -> string
(** Serialize a PDU; [String.length (encode p) = Pdu.wire_bytes p]. *)

val decode : string -> (Pdu.t, error) result
(** Parse and verify a PDU.  Decoded data/parity segments always carry a
    payload (the bytes on the wire). *)

val decode_unchecked : string -> (Pdu.t, error) result
(** Parse without checksum verification — what a no-detection
    configuration does. *)

(** {2 Wire-true zero-copy paths}

    The string codec above touches every byte twice (blit, then
    checksum) and allocates a fresh string per PDU.  The wire-true paths
    serialize straight into a caller-owned buffer with the Internet
    checksum {e fused into the copy pass} — the
    simultaneous-transmission-and-checksum property §2.2(C) claims for
    trailer checksums — and parse in place over [(Bytes.t, off, len)]
    views.  Byte images and error behavior are identical to
    [encode]/[decode]; the test suite asserts both on random PDUs. *)

type wire
(** Reusable encoder/scanner state.  One per wire-mode network (and
    therefore per domain): the record is mutated by every call, so it
    must not be shared across parallel fleet workers. *)

val wire_state : unit -> wire
(** Fresh state. *)

val fused_sums : wire -> int
(** Number of payloads whose checksum was computed during the copy pass
    (data and parity encodes through this state). *)

val encode_into : wire -> Pdu.t -> Bytes.t -> off:int -> int
(** [encode_into st pdu b ~off] serializes [pdu] into [b] starting at
    [off] and returns the number of bytes written, always
    [Pdu.wire_bytes pdu].  Payload segments are scatter-gathered via
    {!Msg.iter_data} and stream through {!Checksum.sum_into}: one
    traversal copies and sums.  At steady state a data PDU allocates
    zero minor words.  Raises [Invalid_argument] when the buffer cannot
    hold the PDU. *)

val decode_view : Bytes.t -> off:int -> len:int -> (Pdu.t, error) result
(** [decode_view b ~off ~len] parses the PDU occupying
    [b.[off .. off+len)] in place, verifying the checksum during the
    single read pass without mutating the buffer.  Decoded payloads are
    {!Msg.of_bytes_slice} views sharing [b]: they are valid only while
    [b]'s owner keeps the bytes intact — consumers that hold payloads
    past the delivery boundary must {!Msg.detach} them.  Error-for-error
    equivalent to [decode] on the same bytes. *)

type scan_result = Scan_ok | Scan_truncated | Scan_not_data | Scan_bad_checksum

val scan_data : wire -> Bytes.t -> off:int -> len:int -> scan_result
(** Allocation-free verification and field location for data PDUs — the
    steady-state receive path a kernel-bypass receiver would run.  On
    [Scan_ok] the header fields are parked in the state record for the
    [scan_*] accessors; nothing is boxed, so the scan allocates zero
    minor words. *)

val scan_conn : wire -> int
val scan_seq : wire -> int

val scan_payload_off : wire -> int
(** Absolute offset of the payload within the scanned buffer. *)

val scan_payload_len : wire -> int
val scan_last : wire -> bool
val scan_retransmit : wire -> bool
val scan_app_stamp : wire -> int
val scan_tx_stamp : wire -> int
