open Adaptive_sim

type entry = {
  seg : Pdu.seg;
  mutable sent_at : Time.t;
  mutable retries : int;
  mutable sacked : bool;
}

(* Ring buffer keyed by sequence number modulo a power-of-two capacity.
   The previous Map.Make(Int) representation re-allocated O(log n) tree
   nodes on every track and rebuilt the whole map on every cumulative
   ack ([Imap.partition]) — on the per-PDU hot path that tree churn was
   one of the dominant minor-allocation sources at swarm scale.  The
   ring stores one [entry option] per outstanding seq: a track costs one
   entry and one [Some]; a cumulative ack clears slots in place.

   Invariant: every present seq lies in [low, high); [high - low] never
   exceeds capacity (the ring grows by doubling). *)
type t = {
  mutable ring : entry option array;
  mutable low : int; (* smallest possibly-present seq *)
  mutable high : int; (* 1 + largest tracked seq ([low] when empty) *)
  mutable count : int;
  mutable bytes : int;
}

let create () =
  { ring = Array.make 16 None; low = 0; high = 0; count = 0; bytes = 0 }

let in_flight t = t.count
let bytes_in_flight t = t.bytes
let is_empty t = t.count = 0

let slot t seq = seq land (Array.length t.ring - 1)
let get t seq = t.ring.(slot t seq)

(* Ensure capacity covers [lo, hi] and rehome present entries. *)
let ensure t lo hi =
  let need = hi - lo + 1 in
  if need > Array.length t.ring then begin
    let cap = ref (Array.length t.ring) in
    while !cap < need do
      cap := !cap * 2
    done;
    let fresh = Array.make !cap None in
    for seq = t.low to t.high - 1 do
      match get t seq with
      | None -> ()
      | Some _ as e -> fresh.(seq land (!cap - 1)) <- e
    done;
    t.ring <- fresh
  end

let track t seg ~at =
  let seq = seg.Pdu.seq in
  if t.count = 0 then begin
    t.low <- seq;
    t.high <- seq
  end;
  let lo = min t.low seq and hi = max (t.high - 1) seq in
  ensure t lo hi;
  t.low <- lo;
  t.high <- hi + 1;
  (match get t seq with
  | Some e -> t.bytes <- t.bytes - e.seg.Pdu.seg_bytes
  | None -> t.count <- t.count + 1);
  t.ring.(slot t seq) <- Some { seg; sent_at = at; retries = 0; sacked = false };
  t.bytes <- t.bytes + seg.Pdu.seg_bytes

let in_range t seq = seq >= t.low && seq < t.high
let find t seq = if in_range t seq then get t seq else None

let touch t seq ~at =
  match find t seq with
  | None -> ()
  | Some e ->
    e.sent_at <- at;
    e.retries <- e.retries + 1

let lowest_outstanding t =
  if t.count = 0 then None
  else begin
    (* Tighten [low] while scanning so repeated queries stay cheap. *)
    while t.low < t.high && get t t.low = None do
      t.low <- t.low + 1
    done;
    match get t t.low with Some e -> Some e.seg.Pdu.seq | None -> None
  end

let on_cumulative_ack t ~cum =
  if t.count = 0 || cum <= t.low then []
  else begin
    let hi = min cum t.high in
    let acc = ref [] in
    for seq = hi - 1 downto t.low do
      match get t seq with
      | None -> ()
      | Some e ->
        acc := e :: !acc;
        t.ring.(slot t seq) <- None;
        t.count <- t.count - 1;
        t.bytes <- t.bytes - e.seg.Pdu.seg_bytes
    done;
    t.low <- max t.low (min cum t.high);
    if t.high < t.low then t.high <- t.low;
    !acc
  end

let mark_sacked t seqs =
  List.iter
    (fun seq -> match find t seq with Some e -> e.sacked <- true | None -> ())
    seqs

let unsacked_from t from =
  let acc = ref [] in
  for seq = t.high - 1 downto max from t.low do
    match get t seq with
    | Some e when not e.sacked -> acc := e.seg :: !acc
    | Some _ | None -> ()
  done;
  !acc

let unsacked_missing t seqs =
  List.filter_map
    (fun seq ->
      match find t seq with
      | Some e when not e.sacked -> Some e.seg
      | Some _ | None -> None)
    (List.sort_uniq compare seqs)

let oldest_unsacked t =
  let rec scan seq =
    if seq >= t.high then None
    else
      match get t seq with
      | Some e when not e.sacked -> Some e
      | Some _ | None -> scan (seq + 1)
  in
  scan t.low

let iter t f =
  for seq = t.low to t.high - 1 do
    match get t seq with Some e -> f e | None -> ()
  done
