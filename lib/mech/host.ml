open Adaptive_sim

type t = {
  engine : Engine.t;
  per_packet : Time.t;
  per_byte_copy : Time.t;
  speed : float;
  mutable copy_count : int;
  mutable busy : Time.t;
  mutable busy_expedited : Time.t;
  mutable accumulated : Time.t;
  mutable packet_count : int;
  mutable stall_extra : Time.t;
}

let create ?(per_packet = Time.us 100) ?(per_byte_copy = Time.ns 25) ?(copies = 2)
    ?(speed = 1.0) engine =
  if speed <= 0.0 then invalid_arg "Host.create: non-positive speed";
  {
    engine;
    per_packet;
    per_byte_copy;
    speed;
    copy_count = copies;
    busy = Time.zero;
    busy_expedited = Time.zero;
    accumulated = Time.zero;
    packet_count = 0;
    stall_extra = Time.zero;
  }

let zero_cost engine = create ~per_packet:Time.zero ~per_byte_copy:Time.zero ~copies:0 engine

let process t ~bytes ?(extra = Time.zero) ?(expedited = false) () =
  let now = Engine.now t.engine in
  let nominal =
    Time.add t.per_packet
      (Time.add t.stall_extra
         (Time.add extra (t.copy_count * bytes * t.per_byte_copy)))
  in
  (* [speed] divides the WHOLE per-packet cost — including the caller's
     [extra] (checksum verification, instrumentation) and fault stalls.
     Scaling only the fixed components would leave the per-byte extras
     as an unscaled floor that quietly becomes the binding constraint of
     population-scale experiments. *)
  let cost =
    if t.speed = 1.0 then nominal
    else
      Time.ns
        (Stdlib.max 0
           (int_of_float (Float.round (float_of_int nominal /. t.speed))))
  in
  t.accumulated <- Time.add t.accumulated cost;
  t.packet_count <- t.packet_count + 1;
  if expedited then begin
    (* Jumps the bulk backlog; bulk work completes no earlier than the
       expedited work that preempted it. *)
    let start = Time.max now t.busy_expedited in
    let finish = Time.add start cost in
    t.busy_expedited <- finish;
    t.busy <- Time.max t.busy finish;
    finish
  end
  else begin
    let start = Time.max now t.busy in
    let finish = Time.add start cost in
    t.busy <- finish;
    finish
  end

let copies t = t.copy_count
let set_copies t n = t.copy_count <- max 0 n
let stall t = t.stall_extra
let set_stall t extra = t.stall_extra <- Time.max Time.zero extra
let busy_until t = t.busy
let total_busy t = t.accumulated
let packets t = t.packet_count
