(** Isochronous playout buffering (jitter smoothing).

    Continuous-media configurations deliver each segment at a fixed
    playout point after its application timestamp: early arrivals wait,
    smoothing network jitter to (near) zero at the cost of [target]
    latency; arrivals past their playout point are useless and are
    discarded (the loss-tolerance the media classes in Table 1 allow). *)

open Adaptive_sim

type t
(** Playout state. *)

type verdict =
  | Release_at of Time.t  (** Hold the segment and deliver at this time. *)
  | Late of Time.t  (** Missed its playout point by this much; discard. *)

val create : target:Time.t -> t
(** [create ~target] sets the playout point [target] after each segment's
    application stamp. *)

val target : t -> Time.t
(** Configured playout delay. *)

val set_target : t -> Time.t -> unit
(** Adjust the playout point (an SCS-level adaptation). *)

val offer : t -> app_stamp:Time.t -> arrival:Time.t -> verdict
(** Decide one segment's fate.  Release points are monotone
    non-decreasing in offer order: when the target shrinks, the smaller
    delay phases in rather than letting new segments overtake releases
    already granted (in-order delivery survives playout adaptation). *)

val released : t -> int
(** Segments scheduled for release so far. *)

val discarded : t -> int
(** Segments discarded as late so far. *)
