open Adaptive_sim

type t = {
  mutable target : Time.t;
  mutable released : int;
  mutable discarded : int;
  mutable horizon : Time.t;  (* latest release point granted so far *)
}

type verdict = Release_at of Time.t | Late of Time.t

let create ~target = { target; released = 0; discarded = 0; horizon = Time.zero }
let target t = t.target
let set_target t v = t.target <- v

let offer t ~app_stamp ~arrival =
  (* A shrinking target must not let a later segment release before an
     already-granted earlier one: the stream would reach the application
     reordered.  Decreases therefore take effect gradually, never behind
     the release horizon. *)
  let point = Time.max (Time.add app_stamp t.target) t.horizon in
  if arrival <= point then begin
    t.released <- t.released + 1;
    t.horizon <- point;
    Release_at point
  end
  else begin
    t.discarded <- t.discarded + 1;
    Late (Time.diff arrival point)
  end

let released t = t.released
let discarded t = t.discarded
