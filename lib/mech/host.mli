(** Host processing cost model.

    §2.2(A)'s throughput-preservation problem: transport system overhead
    — memory-to-memory copies, per-packet interrupt and context-switch
    work — consumes a serial CPU whose speed does not scale with the
    network.  Each host owns one such CPU; every packet passing through
    the transport system occupies it for
    [per_packet + copies * bytes * per_byte_copy (+ extra)].  Packets
    queue behind one another on the CPU exactly as they queue on a link,
    producing the delivered-throughput plateau the paper describes. *)

open Adaptive_sim

type t
(** One host CPU. *)

val create :
  ?per_packet:Time.t ->
  ?per_byte_copy:Time.t ->
  ?copies:int ->
  ?speed:float ->
  Engine.t ->
  t
(** [create engine] models a host.  Defaults are 1992-class: 100 us fixed
    per-packet cost (interrupt, context switch, protocol control),
    25 ns per byte per copy (a ~40 MB/s memory system) and 2 copies per
    packet traversal (user/kernel and kernel/interface).  [speed]
    (default 1.0) divides every packet's total CPU cost — the fixed and
    copy components, the caller's [extra] work and fault stalls alike —
    for experiments where one endpoint stands for a population of hosts.
    Pre-scaling [per_packet] alone is not equivalent: the per-byte
    [extra] charges (checksum verification) would remain an unscaled
    floor and become the binding constraint at scale. *)

val zero_cost : Engine.t -> t
(** An infinitely fast host: packets pass through for free (isolates
    network behaviour in experiments that do not study host overhead). *)

val process : t -> bytes:int -> ?extra:Time.t -> ?expedited:bool -> unit -> Time.t
(** Occupy the CPU for one packet of [bytes] bytes (plus [extra] work,
    e.g. checksum computation); returns the completion time, [>= now].
    Bulk work (the default) is serialized behind everything already
    queued.  [expedited] work models priority scheduling: it queues only
    behind other expedited work, jumping the bulk backlog (a preemption
    approximation: an expedited burst and a bulk burst may overlap
    rather than strictly share the CPU). *)

val copies : t -> int
(** Copies charged per packet traversal. *)

val set_copies : t -> int -> unit
(** Change the copy count (the e4 experiment's sweep knob). *)

val stall : t -> Time.t
(** Current per-packet stall surcharge (zero when healthy). *)

val set_stall : t -> Time.t -> unit
(** Add a fixed surcharge to every packet's CPU cost — the fault
    injector's host-stall (GC-pause analog).  Clamped to [>= 0]; set back
    to {!Adaptive_sim.Time.zero} to heal. *)

val busy_until : t -> Time.t
(** When the CPU becomes free. *)

val total_busy : t -> Time.t
(** Accumulated busy time (for utilization reports). *)

val packets : t -> int
(** Packets processed. *)
