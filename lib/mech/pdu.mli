(** Transport protocol data units.

    Every ADAPTIVE session configuration — and the monolithic baselines —
    exchanges these PDUs over {!Adaptive_net.Network}.  The variant covers
    the data path (segments, FEC parity), the reporting path (cumulative
    and selective acknowledgments, negative acknowledgments), connection
    management (implicit and explicit handshakes, graceful and abortive
    release) and the out-of-band signaling channel MANTTS uses for
    negotiation and reconfiguration (§4.1, Figure 3). *)

open Adaptive_sim

type seg = {
  seq : int;  (** Segment sequence number (per session, from 0). *)
  seg_bytes : int;  (** Payload bytes carried. *)
  app_stamp : Time.t;  (** When the application produced the data. *)
  app_last : bool;  (** Final segment of an application message. *)
  payload : Adaptive_buf.Msg.t option;
      (** The actual bytes, when the application supplied them.  [None]
          runs the protocol over sizes alone (the common mode for
          performance experiments); [Some] carries real data end to end,
          including through XOR parity reconstruction. *)
}
(** One data segment. *)

val seg :
  ?payload:Adaptive_buf.Msg.t ->
  ?last:bool ->
  ?stamp:Time.t ->
  seq:int ->
  bytes:int ->
  unit ->
  seg
(** Build a segment.  When [payload] is given, its data length must equal
    [bytes]. *)

val strip_payload : seg -> seg
(** The same segment without its bytes — what metadata-bearing control
    PDUs (parity cover lists) carry on the wire. *)

type t =
  | Data of { conn : int; seg : seg; retransmit : bool; tx_stamp : Time.t }
      (** A data segment; [retransmit] marks resent copies.  [tx_stamp]
          is the wire-format transmit timestamp (RFC 7323 style): acks
          echo it back, making round-trip measurement unambiguous even
          for retransmissions. *)
  | Parity of {
      conn : int;
      group_start : int;
      group_len : int;
      covered : seg list;  (** Metadata only (payloads stripped). *)
      parity : Adaptive_buf.Msg.t option;
          (** XOR of the covered payloads, padded to the longest, when the
              data path carries real bytes. *)
    }
      (** Parity covering sequence numbers
          [group_start .. group_start+group_len-1]. *)
  | Ack of { conn : int; cum : int; window : int; sack : int list; echo : Time.t }
      (** Cumulative ack: every seq [< cum] received; [window] advertises
          receiver buffer (segments); [sack] lists received seqs beyond
          [cum]; [echo] returns the newest data [tx_stamp] seen (zero
          before any data). *)
  | Nack of { conn : int; missing : int list }
      (** Negative acknowledgment of the listed gaps. *)
  | Syn of { conn : int; blob : string; first : t option }
      (** Connection request carrying a serialized configuration proposal;
          [first] piggybacks the first data PDU for implicit
          negotiation. *)
  | Syn_ack of { conn : int; accepted : bool; blob : string }
      (** Response: [blob] is the (possibly counter-proposed) accepted
          configuration. *)
  | Ack_of_syn of { conn : int }  (** Third leg of a 3-way handshake. *)
  | Fin of { conn : int; graceful : bool }  (** Release request. *)
  | Fin_ack of { conn : int }  (** Release confirmation. *)
  | Signal of { conn : int; blob : string }
      (** Out-of-band control message (renegotiation, reconfiguration,
          QoS notifications). *)
  | Signal_ack of { conn : int; blob : string }
      (** Control-channel response. *)

val conn_id : t -> int
(** Connection identifier of any PDU. *)

val header_bytes : t -> int
(** Size of the PDU's header on the wire.  Data/parity headers are compact
    (the paper's "efficient control formats"); control PDUs include their
    blobs. *)

val payload_bytes : t -> int
(** Declared payload size: the segment's bytes for data, the longest
    covered segment for parity, zero for control PDUs.  This is the
    payload room the wire image reserves whether or not actual payload
    bytes are attached. *)

val wire_bytes : t -> int
(** Total wire size: header plus payload. *)

val describe : t -> string
(** Short human-readable tag ("data#12", "ack<5", ...). *)
