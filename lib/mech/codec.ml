open Adaptive_buf

type error = Truncated | Bad_type of int | Bad_checksum

let error_to_string = function
  | Truncated -> "truncated packet"
  | Bad_type t -> Printf.sprintf "unknown PDU type %d" t
  | Bad_checksum -> "checksum verification failed"

(* Type tags. *)
let t_data = 1
let t_parity = 2
let t_ack = 3
let t_nack = 4
let t_syn = 5
let t_syn_ack = 6
let t_ack_of_syn = 7
let t_fin = 8
let t_fin_ack = 9
let t_signal = 10
let t_signal_ack = 11

let set_u8 b off v = Bytes.set_uint8 b off (v land 0xff)
let set_u16 b off v = Bytes.set_uint16_be b off (v land 0xffff)
let set_u32 b off v = Bytes.set_int32_be b off (Int32.of_int v)
let set_u64 b off v = Bytes.set_int64_be b off (Int64.of_int v)
let get_u8 = Bytes.get_uint8
let get_u16 = Bytes.get_uint16_be
let get_u32 b off = Int32.to_int (Bytes.get_int32_be b off) land 0xffffffff
let get_u64 b off = Int64.to_int (Bytes.get_int64_be b off)

let payload_string (seg : Pdu.seg) =
  match seg.Pdu.payload with
  | Some m -> Msg.data_to_string m
  | None -> String.make seg.Pdu.seg_bytes '\000'

(* Checksum over the whole packet with the checksum field zeroed.  For
   payload-bearing PDUs the field is the 2-byte trailer; control PDUs keep
   it at offset 2. *)
let checksum_offset b =
  match get_u8 b 0 with
  | t when t = t_data || t = t_parity -> Bytes.length b - 2
  | _ -> 2

let seal b =
  let off = checksum_offset b in
  set_u16 b off 0;
  set_u16 b off (Checksum.internet (Bytes.unsafe_to_string b))

let verify b =
  let off = checksum_offset b in
  let found = get_u16 b off in
  set_u16 b off 0;
  let expect = Checksum.internet (Bytes.unsafe_to_string b) in
  set_u16 b off found;
  found = expect

(* ------------------------------------------------------------- encode *)

let rec encode_bytes (pdu : Pdu.t) =
  let b = Bytes.make (Pdu.wire_bytes pdu) '\000' in
  (match pdu with
  | Pdu.Data { conn; seg; retransmit; tx_stamp } ->
    set_u8 b 0 t_data;
    set_u8 b 1
      ((if seg.Pdu.app_last then 1 else 0) lor if retransmit then 2 else 0);
    set_u16 b 2 seg.Pdu.seg_bytes;
    set_u32 b 4 conn;
    set_u32 b 8 seg.Pdu.seq;
    set_u64 b 12 seg.Pdu.app_stamp;
    set_u64 b 20 tx_stamp;
    Bytes.blit_string (payload_string seg) 0 b 30 seg.Pdu.seg_bytes
  | Pdu.Parity { conn; group_start; group_len; covered; parity } ->
    let block =
      match parity with
      | Some m -> Msg.data_to_string m
      | None ->
        String.make (List.fold_left (fun acc s -> max acc s.Pdu.seg_bytes) 0 covered) '\000'
    in
    set_u8 b 0 t_parity;
    set_u8 b 1 (List.length covered);
    set_u16 b 2 (String.length block);
    set_u32 b 4 conn;
    set_u32 b 8 group_start;
    set_u16 b 12 group_len;
    List.iteri
      (fun i (s : Pdu.seg) ->
        let off = 14 + (16 * i) in
        set_u32 b off s.Pdu.seq;
        set_u16 b (off + 4) s.Pdu.seg_bytes;
        set_u8 b (off + 6) (if s.Pdu.app_last then 1 else 0);
        set_u64 b (off + 8) s.Pdu.app_stamp)
      covered;
    Bytes.blit_string block 0 b (14 + (16 * List.length covered)) (String.length block)
  | Pdu.Ack { conn; cum; window; sack; echo } ->
    set_u8 b 0 t_ack;
    set_u8 b 1 (List.length sack);
    set_u32 b 4 conn;
    set_u32 b 8 cum;
    set_u32 b 12 window;
    set_u64 b 16 echo;
    List.iteri (fun i s -> set_u32 b (24 + (4 * i)) s) sack
  | Pdu.Nack { conn; missing } ->
    set_u8 b 0 t_nack;
    set_u8 b 1 (List.length missing);
    set_u32 b 4 conn;
    List.iteri (fun i s -> set_u32 b (12 + (4 * i)) s) missing
  | Pdu.Syn { conn; blob; first } ->
    let inner = match first with Some p -> encode_bytes p | None -> Bytes.empty in
    set_u8 b 0 t_syn;
    set_u8 b 1 (if first = None then 0 else 1);
    set_u32 b 4 conn;
    set_u32 b 8 (String.length blob);
    set_u32 b 12 (Bytes.length inner);
    Bytes.blit_string blob 0 b 24 (String.length blob);
    Bytes.blit inner 0 b (24 + String.length blob) (Bytes.length inner)
  | Pdu.Syn_ack { conn; accepted; blob } ->
    set_u8 b 0 t_syn_ack;
    set_u8 b 1 (if accepted then 1 else 0);
    set_u32 b 4 conn;
    set_u32 b 8 (String.length blob);
    Bytes.blit_string blob 0 b 24 (String.length blob)
  | Pdu.Ack_of_syn { conn } ->
    set_u8 b 0 t_ack_of_syn;
    set_u32 b 4 conn
  | Pdu.Fin { conn; graceful } ->
    set_u8 b 0 t_fin;
    set_u8 b 1 (if graceful then 1 else 0);
    set_u32 b 4 conn
  | Pdu.Fin_ack { conn } ->
    set_u8 b 0 t_fin_ack;
    set_u32 b 4 conn
  | Pdu.Signal { conn; blob } ->
    set_u8 b 0 t_signal;
    set_u32 b 4 conn;
    set_u32 b 8 (String.length blob);
    Bytes.blit_string blob 0 b 16 (String.length blob)
  | Pdu.Signal_ack { conn; blob } ->
    set_u8 b 0 t_signal_ack;
    set_u32 b 4 conn;
    set_u32 b 8 (String.length blob);
    Bytes.blit_string blob 0 b 16 (String.length blob));
  seal b;
  b

let encode pdu = Bytes.unsafe_to_string (encode_bytes pdu)

(* ------------------------------------------------------------- decode *)

let sub_string b off len = Bytes.sub_string b off len

let rec decode_body b =
  let len = Bytes.length b in
  if len < 8 then Error Truncated
  else
    let tag = get_u8 b 0 in
    let conn = get_u32 b 4 in
    let need n = if len < n then Error Truncated else Ok () in
    let ( let* ) = Result.bind in
    if tag = t_data then
      let* () = need 32 in
      let plen = get_u16 b 2 in
      let* () = need (32 + plen) in
      let flags = get_u8 b 1 in
      Ok
        (Pdu.Data
           {
             conn;
             seg =
               Pdu.seg ~seq:(get_u32 b 8) ~bytes:plen
                 ~stamp:(get_u64 b 12)
                 ~last:(flags land 1 = 1)
                 ~payload:(Msg.of_string (sub_string b 30 plen))
                 ();
             retransmit = flags land 2 = 2;
             tx_stamp = get_u64 b 20;
           })
    else if tag = t_parity then
      let count = get_u8 b 1 in
      let plen = get_u16 b 2 in
      let* () = need (16 + (16 * count) + plen) in
      let covered =
        List.init count (fun i ->
            let off = 14 + (16 * i) in
            Pdu.seg ~seq:(get_u32 b off)
              ~bytes:(get_u16 b (off + 4))
              ~last:(get_u8 b (off + 6) = 1)
              ~stamp:(get_u64 b (off + 8))
              ())
      in
      Ok
        (Pdu.Parity
           {
             conn;
             group_start = get_u32 b 8;
             group_len = get_u16 b 12;
             covered;
             parity = Some (Msg.of_string (sub_string b (14 + (16 * count)) plen));
           })
    else if tag = t_ack then
      let count = get_u8 b 1 in
      let* () = need (24 + (4 * count)) in
      Ok
        (Pdu.Ack
           {
             conn;
             cum = get_u32 b 8;
             window = get_u32 b 12;
             echo = get_u64 b 16;
             sack = List.init count (fun i -> get_u32 b (24 + (4 * i)));
           })
    else if tag = t_nack then
      let count = get_u8 b 1 in
      let* () = need (12 + (4 * count)) in
      Ok (Pdu.Nack { conn; missing = List.init count (fun i -> get_u32 b (12 + (4 * i))) })
    else if tag = t_syn then
      let* () = need 24 in
      let blob_len = get_u32 b 8 in
      let inner_len = get_u32 b 12 in
      let* () = need (24 + blob_len + inner_len) in
      let* first =
        if get_u8 b 1 = 0 then Ok None
        else
          let* inner = decode_body (Bytes.sub b (24 + blob_len) inner_len) in
          Ok (Some inner)
      in
      Ok (Pdu.Syn { conn; blob = sub_string b 24 blob_len; first })
    else if tag = t_syn_ack then
      let* () = need 24 in
      let blob_len = get_u32 b 8 in
      let* () = need (24 + blob_len) in
      Ok (Pdu.Syn_ack { conn; accepted = get_u8 b 1 = 1; blob = sub_string b 24 blob_len })
    else if tag = t_ack_of_syn then Ok (Pdu.Ack_of_syn { conn })
    else if tag = t_fin then Ok (Pdu.Fin { conn; graceful = get_u8 b 1 = 1 })
    else if tag = t_fin_ack then Ok (Pdu.Fin_ack { conn })
    else if tag = t_signal || tag = t_signal_ack then begin
      let* () = need 16 in
      let blob_len = get_u32 b 8 in
      let* () = need (16 + blob_len) in
      let blob = sub_string b 16 blob_len in
      if tag = t_signal then Ok (Pdu.Signal { conn; blob })
      else Ok (Pdu.Signal_ack { conn; blob })
    end
    else Error (Bad_type tag)

let decode_unchecked s = decode_body (Bytes.of_string s)

let decode s =
  let b = Bytes.of_string s in
  if Bytes.length b < 8 then Error Truncated
  else if not (verify b) then Error Bad_checksum
  else decode_body b

(* --------------------------------------------------- wire-true paths *)

(* Field accessors over plain immediate ints.  The [set_u32]/[set_u64]
   helpers above go through boxed [Int32.t]/[Int64.t], which costs an
   allocation per call without flambda; the wire-true encoder and scanner
   must stay allocation-free, so they assemble the same big-endian bytes
   from unboxed 16-bit halves.  Values are non-negative and below 2^62,
   so the byte images agree with the boxed writers. *)
let set_u32i b off v =
  Bytes.set_uint16_be b off ((v lsr 16) land 0xFFFF);
  Bytes.set_uint16_be b (off + 2) (v land 0xFFFF)

let set_u64i b off v =
  set_u32i b off ((v lsr 32) land 0xFFFFFFFF);
  set_u32i b (off + 4) v

let get_u32i b off =
  (Bytes.get_uint16_be b off lsl 16) lor Bytes.get_uint16_be b (off + 2)

let get_u64i b off = (get_u32i b off lsl 32) lor get_u32i b (off + 4)

(* Reusable encoder/scanner state: one record per wire-mode network, so
   the hot paths mutate fields instead of allocating.  [copy_seg] is the
   one [Msg.iter_data] callback, built once — creating a closure per
   encode would put words on the minor heap for every data PDU. *)
type wire = {
  mutable wbuf : Bytes.t;
  mutable wpos : int;
  mutable wsum : int;
  mutable fused : int;
  mutable v_conn : int;
  mutable v_seq : int;
  mutable v_flags : int;
  mutable v_plen : int;
  mutable v_pay : int;
  mutable v_app_stamp : int;
  mutable v_tx_stamp : int;
  copy_seg : Bytes.t -> int -> int -> unit;
}

let wire_state () =
  let rec st =
    {
      wbuf = Bytes.empty;
      wpos = 0;
      wsum = Checksum.sum_init;
      fused = 0;
      v_conn = 0;
      v_seq = 0;
      v_flags = 0;
      v_plen = 0;
      v_pay = 0;
      v_app_stamp = 0;
      v_tx_stamp = 0;
      copy_seg =
        (fun src src_off len ->
          st.wsum <-
            Checksum.sum_into st.wsum ~src ~src_off ~dst:st.wbuf
              ~dst_off:st.wpos ~len;
          st.wpos <- st.wpos + len);
    }
  in
  st

let fused_sums st = st.fused

(* Copy a message into [b] at [pos] while folding it into the running
   sum — the single fused pass.  Trailing zero filler (absent payloads,
   parity blocks shorter than the declared maximum) is not summed: zero
   bytes contribute nothing to a ones'-complement sum wherever the word
   pairing falls. *)
let fused_payload st msg b pos sum ~declared =
  match msg with
  | Some m ->
    st.wbuf <- b;
    st.wpos <- pos;
    st.wsum <- sum;
    Msg.iter_data m st.copy_seg;
    st.fused <- st.fused + 1;
    let actual = st.wpos - pos in
    if actual > declared then
      invalid_arg "Codec.encode_into: payload exceeds declared length";
    if actual < declared then Bytes.fill b (pos + actual) (declared - actual) '\000';
    st.wsum
  | None ->
    Bytes.fill b pos declared '\000';
    sum

let encode_into st (pdu : Pdu.t) b ~off =
  let len = Pdu.wire_bytes pdu in
  if off < 0 || off + len > Bytes.length b then
    invalid_arg "Codec.encode_into: buffer too small";
  (match pdu with
  | Pdu.Data { conn; seg; retransmit; tx_stamp } ->
    let plen = seg.Pdu.seg_bytes in
    Bytes.set_uint8 b off t_data;
    Bytes.set_uint8 b (off + 1)
      ((if seg.Pdu.app_last then 1 else 0) lor if retransmit then 2 else 0);
    Bytes.set_uint16_be b (off + 2) plen;
    set_u32i b (off + 4) conn;
    set_u32i b (off + 8) seg.Pdu.seq;
    set_u64i b (off + 12) seg.Pdu.app_stamp;
    set_u64i b (off + 20) tx_stamp;
    Bytes.set_uint16_be b (off + 28) 0;
    let sum = Checksum.sum_add Checksum.sum_init b off 30 in
    let sum = fused_payload st seg.Pdu.payload b (off + 30) sum ~declared:plen in
    Bytes.set_uint16_be b (off + 30 + plen)
      (Checksum.sum_finish (Checksum.sum_skip2 sum))
  | Pdu.Parity { conn; group_start; group_len; covered; parity } ->
    let count = List.length covered in
    let declared = Pdu.payload_bytes pdu in
    let plen =
      match parity with Some m -> Msg.data_length m | None -> declared
    in
    let pstart = off + 14 + (16 * count) in
    Bytes.set_uint8 b off t_parity;
    Bytes.set_uint8 b (off + 1) count;
    Bytes.set_uint16_be b (off + 2) plen;
    set_u32i b (off + 4) conn;
    set_u32i b (off + 8) group_start;
    Bytes.set_uint16_be b (off + 12) group_len;
    List.iteri
      (fun i (s : Pdu.seg) ->
        let eo = off + 14 + (16 * i) in
        set_u32i b eo s.Pdu.seq;
        Bytes.set_uint16_be b (eo + 4) s.Pdu.seg_bytes;
        Bytes.set_uint8 b (eo + 6) (if s.Pdu.app_last then 1 else 0);
        Bytes.set_uint8 b (eo + 7) 0;
        set_u64i b (eo + 8) s.Pdu.app_stamp)
      covered;
    let sum = Checksum.sum_add Checksum.sum_init b off (pstart - off) in
    let sum = fused_payload st parity b pstart sum ~declared in
    Bytes.set_uint16_be b (off + len - 2)
      (Checksum.sum_finish (Checksum.sum_skip2 sum))
  | Pdu.Ack { conn; cum; window; sack; echo } ->
    Bytes.set_uint8 b off t_ack;
    Bytes.set_uint8 b (off + 1) (List.length sack);
    Bytes.set_uint16_be b (off + 2) 0;
    set_u32i b (off + 4) conn;
    set_u32i b (off + 8) cum;
    set_u32i b (off + 12) window;
    set_u64i b (off + 16) echo;
    List.iteri (fun i s -> set_u32i b (off + 24 + (4 * i)) s) sack;
    Bytes.set_uint16_be b (off + 2)
      (Checksum.sum_finish (Checksum.sum_add Checksum.sum_init b off len))
  | Pdu.Nack { conn; missing } ->
    Bytes.set_uint8 b off t_nack;
    Bytes.set_uint8 b (off + 1) (List.length missing);
    Bytes.set_uint16_be b (off + 2) 0;
    set_u32i b (off + 4) conn;
    set_u32i b (off + 8) 0;
    List.iteri (fun i s -> set_u32i b (off + 12 + (4 * i)) s) missing;
    Bytes.set_uint16_be b (off + 2)
      (Checksum.sum_finish (Checksum.sum_add Checksum.sum_init b off len))
  | Pdu.Syn { conn; blob; first } ->
    (* The nested first PDU is sealed separately, exactly as the string
       codec does; connection setup is not a steady-state path, so the
       intermediate bytes are acceptable here. *)
    let inner = match first with Some p -> encode_bytes p | None -> Bytes.empty in
    let blen = String.length blob in
    Bytes.set_uint8 b off t_syn;
    Bytes.set_uint8 b (off + 1) (if first = None then 0 else 1);
    Bytes.set_uint16_be b (off + 2) 0;
    set_u32i b (off + 4) conn;
    set_u32i b (off + 8) blen;
    set_u32i b (off + 12) (Bytes.length inner);
    set_u64i b (off + 16) 0;
    Bytes.blit_string blob 0 b (off + 24) blen;
    Bytes.blit inner 0 b (off + 24 + blen) (Bytes.length inner);
    Bytes.set_uint16_be b (off + 2)
      (Checksum.sum_finish (Checksum.sum_add Checksum.sum_init b off len))
  | Pdu.Syn_ack { conn; accepted; blob } ->
    let blen = String.length blob in
    Bytes.set_uint8 b off t_syn_ack;
    Bytes.set_uint8 b (off + 1) (if accepted then 1 else 0);
    Bytes.set_uint16_be b (off + 2) 0;
    set_u32i b (off + 4) conn;
    set_u32i b (off + 8) blen;
    set_u32i b (off + 12) 0;
    set_u64i b (off + 16) 0;
    Bytes.blit_string blob 0 b (off + 24) blen;
    Bytes.set_uint16_be b (off + 2)
      (Checksum.sum_finish (Checksum.sum_add Checksum.sum_init b off len))
  | Pdu.Ack_of_syn { conn } ->
    Bytes.set_uint8 b off t_ack_of_syn;
    Bytes.set_uint8 b (off + 1) 0;
    Bytes.set_uint16_be b (off + 2) 0;
    set_u32i b (off + 4) conn;
    set_u32i b (off + 8) 0;
    Bytes.set_uint16_be b (off + 2)
      (Checksum.sum_finish (Checksum.sum_add Checksum.sum_init b off len))
  | Pdu.Fin { conn; graceful } ->
    Bytes.set_uint8 b off t_fin;
    Bytes.set_uint8 b (off + 1) (if graceful then 1 else 0);
    Bytes.set_uint16_be b (off + 2) 0;
    set_u32i b (off + 4) conn;
    set_u32i b (off + 8) 0;
    Bytes.set_uint16_be b (off + 2)
      (Checksum.sum_finish (Checksum.sum_add Checksum.sum_init b off len))
  | Pdu.Fin_ack { conn } ->
    Bytes.set_uint8 b off t_fin_ack;
    Bytes.set_uint8 b (off + 1) 0;
    Bytes.set_uint16_be b (off + 2) 0;
    set_u32i b (off + 4) conn;
    set_u32i b (off + 8) 0;
    Bytes.set_uint16_be b (off + 2)
      (Checksum.sum_finish (Checksum.sum_add Checksum.sum_init b off len))
  | Pdu.Signal { conn; blob } | Pdu.Signal_ack { conn; blob } ->
    let blen = String.length blob in
    Bytes.set_uint8 b off
      (match pdu with Pdu.Signal _ -> t_signal | _ -> t_signal_ack);
    Bytes.set_uint8 b (off + 1) 0;
    Bytes.set_uint16_be b (off + 2) 0;
    set_u32i b (off + 4) conn;
    set_u32i b (off + 8) blen;
    set_u32i b (off + 12) 0;
    Bytes.blit_string blob 0 b (off + 16) blen;
    Bytes.set_uint16_be b (off + 2)
      (Checksum.sum_finish (Checksum.sum_add Checksum.sum_init b off len)));
  len

(* In-place verification: sum the ranges either side of the checksum
   field and fold the field in as two zero bytes ({!Checksum.sum_skip2}),
   so shared buffers are never written.  Byte-equivalent to [verify]. *)
let verify_view b ~off ~len =
  let coff =
    match Bytes.get_uint8 b off with
    | t when t = t_data || t = t_parity -> len - 2
    | _ -> 2
  in
  let found = Bytes.get_uint16_be b (off + coff) in
  let st = Checksum.sum_add Checksum.sum_init b off coff in
  let st = Checksum.sum_skip2 st in
  let st = Checksum.sum_add st b (off + coff + 2) (len - coff - 2) in
  found = Checksum.sum_finish st

let decode_body_view b ~off ~len =
  if len < 8 then Error Truncated
  else
    let tag = get_u8 b off in
    let conn = get_u32 b (off + 4) in
    let need n = if len < n then Error Truncated else Ok () in
    let ( let* ) = Result.bind in
    if tag = t_data then
      let* () = need 32 in
      let plen = get_u16 b (off + 2) in
      let* () = need (32 + plen) in
      let flags = get_u8 b (off + 1) in
      Ok
        (Pdu.Data
           {
             conn;
             seg =
               Pdu.seg
                 ~seq:(get_u32 b (off + 8))
                 ~bytes:plen
                 ~stamp:(get_u64 b (off + 12))
                 ~last:(flags land 1 = 1)
                 ~payload:(Msg.of_bytes_slice b ~off:(off + 30) ~len:plen)
                 ();
             retransmit = flags land 2 = 2;
             tx_stamp = get_u64 b (off + 20);
           })
    else if tag = t_parity then
      let count = get_u8 b (off + 1) in
      let plen = get_u16 b (off + 2) in
      let* () = need (16 + (16 * count) + plen) in
      let covered =
        List.init count (fun i ->
            let eo = off + 14 + (16 * i) in
            Pdu.seg
              ~seq:(get_u32 b eo)
              ~bytes:(get_u16 b (eo + 4))
              ~last:(get_u8 b (eo + 6) = 1)
              ~stamp:(get_u64 b (eo + 8))
              ())
      in
      Ok
        (Pdu.Parity
           {
             conn;
             group_start = get_u32 b (off + 8);
             group_len = get_u16 b (off + 12);
             covered;
             parity =
               Some (Msg.of_bytes_slice b ~off:(off + 14 + (16 * count)) ~len:plen);
           })
    else if tag = t_ack then
      let count = get_u8 b (off + 1) in
      let* () = need (24 + (4 * count)) in
      Ok
        (Pdu.Ack
           {
             conn;
             cum = get_u32 b (off + 8);
             window = get_u32 b (off + 12);
             echo = get_u64 b (off + 16);
             sack = List.init count (fun i -> get_u32 b (off + 24 + (4 * i)));
           })
    else if tag = t_nack then
      let count = get_u8 b (off + 1) in
      let* () = need (12 + (4 * count)) in
      Ok
        (Pdu.Nack
           { conn; missing = List.init count (fun i -> get_u32 b (off + 12 + (4 * i))) })
    else if tag = t_syn then
      let* () = need 24 in
      let blob_len = get_u32 b (off + 8) in
      let inner_len = get_u32 b (off + 12) in
      let* () = need (24 + blob_len + inner_len) in
      let* first =
        if get_u8 b (off + 1) = 0 then Ok None
        else
          let* inner = decode_body (Bytes.sub b (off + 24 + blob_len) inner_len) in
          Ok (Some inner)
      in
      Ok (Pdu.Syn { conn; blob = sub_string b (off + 24) blob_len; first })
    else if tag = t_syn_ack then
      let* () = need 24 in
      let blob_len = get_u32 b (off + 8) in
      let* () = need (24 + blob_len) in
      Ok
        (Pdu.Syn_ack
           {
             conn;
             accepted = get_u8 b (off + 1) = 1;
             blob = sub_string b (off + 24) blob_len;
           })
    else if tag = t_ack_of_syn then Ok (Pdu.Ack_of_syn { conn })
    else if tag = t_fin then Ok (Pdu.Fin { conn; graceful = get_u8 b (off + 1) = 1 })
    else if tag = t_fin_ack then Ok (Pdu.Fin_ack { conn })
    else if tag = t_signal || tag = t_signal_ack then begin
      let* () = need 16 in
      let blob_len = get_u32 b (off + 8) in
      let* () = need (16 + blob_len) in
      let blob = sub_string b (off + 16) blob_len in
      if tag = t_signal then Ok (Pdu.Signal { conn; blob })
      else Ok (Pdu.Signal_ack { conn; blob })
    end
    else Error (Bad_type tag)

let decode_view b ~off ~len =
  if off < 0 || len < 0 || off + len > Bytes.length b then
    invalid_arg "Codec.decode_view";
  if len < 8 then Error Truncated
  else if not (verify_view b ~off ~len) then Error Bad_checksum
  else decode_body_view b ~off ~len

type scan_result = Scan_ok | Scan_truncated | Scan_not_data | Scan_bad_checksum

let scan_data st b ~off ~len =
  if off < 0 || len < 0 || off + len > Bytes.length b then
    invalid_arg "Codec.scan_data";
  if len < 32 then Scan_truncated
  else if Bytes.get_uint8 b off <> t_data then Scan_not_data
  else begin
    let plen = Bytes.get_uint16_be b (off + 2) in
    if len < 32 + plen then Scan_truncated
    else if not (verify_view b ~off ~len) then Scan_bad_checksum
    else begin
      st.v_flags <- Bytes.get_uint8 b (off + 1);
      st.v_plen <- plen;
      st.v_conn <- get_u32i b (off + 4);
      st.v_seq <- get_u32i b (off + 8);
      st.v_app_stamp <- get_u64i b (off + 12);
      st.v_tx_stamp <- get_u64i b (off + 20);
      st.v_pay <- off + 30;
      Scan_ok
    end
  end

let scan_conn st = st.v_conn
let scan_seq st = st.v_seq
let scan_payload_off st = st.v_pay
let scan_payload_len st = st.v_plen
let scan_last st = st.v_flags land 1 = 1
let scan_retransmit st = st.v_flags land 2 = 2
let scan_app_stamp st = st.v_app_stamp
let scan_tx_stamp st = st.v_tx_stamp
