open Adaptive_sim

type addr = Topology.addr

type 'm recv = {
  payload : 'm;
  src : addr;
  dst : addr;
  wire_bytes : int;
  sent_at : Time.t;
  received_at : Time.t;
  corrupted : bool;
}

type stats = {
  sent : int;
  delivered : int;
  dropped_queue : int;
  dropped_down : int;
  dropped_no_route : int;
  dropped_mtu : int;
  corrupted : int;
  bytes_sent : int;
}

type 'm t = {
  engine : Engine.t;
  rng : Rng.t;
  topology : Topology.t;
  handlers : (addr, 'm recv -> unit) Hashtbl.t;
  mutable s_sent : int;
  mutable s_delivered : int;
  mutable s_dropped_queue : int;
  mutable s_dropped_down : int;
  mutable s_dropped_no_route : int;
  mutable s_dropped_mtu : int;
  mutable s_corrupted : int;
  mutable s_bytes_sent : int;
  mutable s_conn_counter : int;
}

let create engine ~rng topology =
  {
    engine;
    rng;
    topology;
    handlers = Hashtbl.create 16;
    s_sent = 0;
    s_delivered = 0;
    s_dropped_queue = 0;
    s_dropped_down = 0;
    s_dropped_no_route = 0;
    s_dropped_mtu = 0;
    s_corrupted = 0;
    s_bytes_sent = 0;
    s_conn_counter = 0;
  }

let fresh_conn_id t =
  t.s_conn_counter <- t.s_conn_counter + 1;
  t.s_conn_counter

let engine t = t.engine
let topology t = t.topology
let attach t addr handler = Hashtbl.replace t.handlers addr handler
let detach t addr = Hashtbl.remove t.handlers addr

(* Walk the hop list, reusing cached verdicts for links this packet has
   already crossed (multicast replication at branch points).  Returns the
   delivery time and corruption flag, or the drop cause. *)
type outcome =
  | Arrives of Time.t * bool
  | Lost_queue
  | Lost_down
  | Lost_mtu

let traverse t ~cache ~bytes hops =
  let now = Engine.now t.engine in
  let rec walk arrival corrupted = function
    | [] -> Arrives (arrival, corrupted)
    | link :: rest -> (
      if bytes > Link.mtu link then Lost_mtu
      else
        let verdict =
          match List.assq_opt link !cache with
          | Some v -> v
          | None ->
            let v = Link.transmit link ~rng:t.rng ~now ~arrival ~bytes in
            cache := (link, v) :: !cache;
            v
        in
        match verdict with
        | Link.Transmitted { departs; corrupted = c } ->
          walk departs (corrupted || c) rest
        | Link.Dropped_queue -> Lost_queue
        | Link.Dropped_down -> Lost_down)
  in
  walk now false hops

let deliver t ~src ~dst ~bytes ~sent_at payload outcome =
  match outcome with
  | Lost_queue -> t.s_dropped_queue <- t.s_dropped_queue + 1
  | Lost_down -> t.s_dropped_down <- t.s_dropped_down + 1
  | Lost_mtu -> t.s_dropped_mtu <- t.s_dropped_mtu + 1
  | Arrives (at, corrupted) ->
    if corrupted then t.s_corrupted <- t.s_corrupted + 1;
    ignore
      (Engine.schedule t.engine ~at (fun () ->
           match Hashtbl.find_opt t.handlers dst with
           | None -> ()
           | Some handler ->
             t.s_delivered <- t.s_delivered + 1;
             handler
               {
                 payload;
                 src;
                 dst;
                 wire_bytes = bytes;
                 sent_at;
                 received_at = at;
                 corrupted;
               }))

let send_on_cache t ~cache ~src ~dst ~bytes payload =
  match Topology.route t.topology ~src ~dst with
  | None -> t.s_dropped_no_route <- t.s_dropped_no_route + 1
  | Some hops ->
    let sent_at = Engine.now t.engine in
    deliver t ~src ~dst ~bytes ~sent_at payload (traverse t ~cache ~bytes hops)

let send t ~src ~dst ~bytes payload =
  if bytes <= 0 then invalid_arg "Network.send: non-positive size";
  t.s_sent <- t.s_sent + 1;
  t.s_bytes_sent <- t.s_bytes_sent + bytes;
  send_on_cache t ~cache:(ref []) ~src ~dst ~bytes payload

let multicast t ~src ~dsts ~bytes payload =
  if bytes <= 0 then invalid_arg "Network.multicast: non-positive size";
  t.s_sent <- t.s_sent + 1;
  t.s_bytes_sent <- t.s_bytes_sent + bytes;
  let cache = ref [] in
  List.iter (fun dst -> send_on_cache t ~cache ~src ~dst ~bytes payload) dsts

let stats t =
  {
    sent = t.s_sent;
    delivered = t.s_delivered;
    dropped_queue = t.s_dropped_queue;
    dropped_down = t.s_dropped_down;
    dropped_no_route = t.s_dropped_no_route;
    dropped_mtu = t.s_dropped_mtu;
    corrupted = t.s_corrupted;
    bytes_sent = t.s_bytes_sent;
  }

let reset_stats t =
  t.s_sent <- 0;
  t.s_delivered <- 0;
  t.s_dropped_queue <- 0;
  t.s_dropped_down <- 0;
  t.s_dropped_no_route <- 0;
  t.s_dropped_mtu <- 0;
  t.s_corrupted <- 0;
  t.s_bytes_sent <- 0;
  List.iter Link.reset_stats (Topology.links t.topology)

type hop_state = {
  link_name : string;
  bandwidth : float;
  utilization : float;
  cross_traffic : float;
  queue_delay : Time.t;
  hop_ber : float;
  hop_mtu : int;
  up : bool;
}

let path_state t ~src ~dst =
  match Topology.route t.topology ~src ~dst with
  | None -> []
  | Some hops ->
    let now = Engine.now t.engine in
    let snapshot link =
      {
        link_name = Link.name link;
        bandwidth = Link.bandwidth_bps link;
        utilization = Link.utilization_estimate link ~now;
        cross_traffic = Link.background_utilization link;
        queue_delay = Link.queue_delay_estimate link ~now;
        hop_ber = Link.ber link;
        hop_mtu = Link.mtu link;
        up = Link.is_up link;
      }
    in
    List.map snapshot hops

let one_way_estimate hops bytes =
  List.fold_left
    (fun acc link ->
      Time.add acc
        (Time.add (Link.propagation link)
           (Time.of_rate ~bits:(bytes * 8) ~bps:(Link.bandwidth_bps link))))
    Time.zero hops

let rtt_estimate t ~src ~dst ~bytes =
  match (Topology.route t.topology ~src ~dst, Topology.route t.topology ~src:dst ~dst:src) with
  | Some fwd, Some back ->
    Some (Time.add (one_way_estimate fwd bytes) (one_way_estimate back bytes))
  | Some fwd, None -> Some (Time.add (one_way_estimate fwd bytes) (one_way_estimate fwd bytes))
  | None, _ -> None
