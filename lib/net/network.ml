open Adaptive_sim
open Adaptive_buf

type addr = Topology.addr

type 'm recv = {
  payload : 'm;
  src : addr;
  dst : addr;
  wire_bytes : int;
  sent_at : Time.t;
  received_at : Time.t;
  corrupted : bool;
}

type stats = {
  sent : int;
  delivered : int;
  dropped_queue : int;
  dropped_down : int;
  dropped_no_route : int;
  dropped_mtu : int;
  corrupted : int;
  bytes_sent : int;
}

type wire_stats = {
  wire_encoded : int;
  wire_decoded : int;
  wire_rejected : int;
}

(* Wire-true mode: PDUs cross the network as real bytes in leased
   buffers.  The hooks keep the network parametric in ['m] — the
   transport above supplies the codec; the network owns frame lifetime
   (the lease) and per-receiver corruption. *)
type 'm wire = {
  wh_encode : 'm -> int -> Pool.lease;
  wh_decode : Bytes.t -> int -> int -> 'm option;
  wh_release : Pool.lease -> unit;
  mutable wh_encoded : int;
  mutable wh_decoded : int;
  mutable wh_rejected : int;
}

type 'm t = {
  engine : Engine.t;
  rng : Rng.t;
  topology : Topology.t;
  handlers : (addr, 'm recv -> unit) Hashtbl.t;
  mutable wire : 'm wire option;
  mutable remote : (src:addr -> dst:addr -> bytes:int -> 'm -> unit) option;
  mutable s_sent : int;
  mutable s_delivered : int;
  mutable s_dropped_queue : int;
  mutable s_dropped_down : int;
  mutable s_dropped_no_route : int;
  mutable s_dropped_mtu : int;
  mutable s_corrupted : int;
  mutable s_bytes_sent : int;
  mutable s_remote_out : int;
  mutable s_remote_in : int;
  mutable s_conn_counter : int;
  mutable conn_stride : int;
  mutable conn_offset : int;
}

let create engine ~rng topology =
  {
    engine;
    rng;
    topology;
    handlers = Hashtbl.create 16;
    wire = None;
    remote = None;
    s_sent = 0;
    s_delivered = 0;
    s_dropped_queue = 0;
    s_dropped_down = 0;
    s_dropped_no_route = 0;
    s_dropped_mtu = 0;
    s_corrupted = 0;
    s_bytes_sent = 0;
    s_remote_out = 0;
    s_remote_in = 0;
    s_conn_counter = 0;
    conn_stride = 1;
    conn_offset = 0;
  }

let fresh_conn_id t =
  t.s_conn_counter <- t.s_conn_counter + 1;
  ((t.s_conn_counter - 1) * t.conn_stride) + t.conn_offset + 1

let set_conn_stripe t ~stride ~offset =
  if stride < 1 then invalid_arg "Network.set_conn_stripe: stride must be >= 1";
  if offset < 0 || offset >= stride then
    invalid_arg "Network.set_conn_stripe: offset must be in [0, stride)";
  if t.s_conn_counter > 0 then
    invalid_arg "Network.set_conn_stripe: connection ids already allocated";
  t.conn_stride <- stride;
  t.conn_offset <- offset

let engine t = t.engine
let topology t = t.topology

let set_wire t ~encode ~decode ~release =
  if t.remote <> None then
    invalid_arg "Network.set_wire: incompatible with a remote-delivery hook";
  t.wire <-
    Some
      {
        wh_encode = encode;
        wh_decode = decode;
        wh_release = release;
        wh_encoded = 0;
        wh_decoded = 0;
        wh_rejected = 0;
      }

let wire_active t = t.wire <> None

let wire_stats t =
  Option.map
    (fun w ->
      {
        wire_encoded = w.wh_encoded;
        wire_decoded = w.wh_decoded;
        wire_rejected = w.wh_rejected;
      })
    t.wire
let attach t addr handler = Hashtbl.replace t.handlers addr handler
let detach t addr = Hashtbl.remove t.handlers addr

(* Remote delivery: a shard coordinator owns the path between this
   network and its peers, so packets to unrouted destinations are handed
   over instead of dropped, and arrivals from other partitions are
   delivered through the normal handler path.  Wire-true mode is
   value-incompatible with hand-over (the frame lease cannot cross a
   domain boundary), so the two hooks are mutually exclusive. *)
let set_remote t f =
  if t.wire <> None then
    invalid_arg "Network.set_remote: incompatible with wire-true mode";
  t.remote <- Some f

let remote_counts t = (t.s_remote_out, t.s_remote_in)

let deliver_remote t ~src ~dst ~bytes ~sent_at payload =
  t.s_remote_in <- t.s_remote_in + 1;
  match Hashtbl.find_opt t.handlers dst with
  | None -> ()
  | Some handler ->
    t.s_delivered <- t.s_delivered + 1;
    handler
      {
        payload;
        src;
        dst;
        wire_bytes = bytes;
        sent_at;
        received_at = Engine.now t.engine;
        corrupted = false;
      }

(* Walk the hop list, reusing cached verdicts for links this packet has
   already crossed (multicast replication at branch points).  Returns the
   delivery time and corruption flag, or the drop cause. *)
type outcome =
  | Arrives of Time.t * bool
  | Lost_queue
  | Lost_down
  | Lost_mtu

(* [cache] memoizes per-link verdicts across a multicast fan-out so a
   shared upstream hop is transmitted once; unicast sends pass [None]
   and skip the association list entirely. *)
let traverse t ~cache ~frame ~bytes hops =
  let now = Engine.now t.engine in
  let lframe =
    match frame with
    | Some lease -> Some (Pool.lease_buf lease, 0, bytes)
    | None -> None
  in
  let rec walk arrival corrupted = function
    | [] -> Arrives (arrival, corrupted)
    | link :: rest -> (
      if bytes > Link.mtu link then Lost_mtu
      else
        let verdict =
          match cache with
          | None -> Link.transmit link ?frame:lframe ~rng:t.rng ~now ~arrival ~bytes ()
          | Some cache -> (
            match List.assq_opt link !cache with
            | Some v -> v
            | None ->
              let v = Link.transmit link ?frame:lframe ~rng:t.rng ~now ~arrival ~bytes () in
              cache := (link, v) :: !cache;
              v)
        in
        match verdict with
        | Link.Transmitted { departs; corrupted = c } ->
          walk departs (corrupted || c) rest
        | Link.Dropped_queue -> Lost_queue
        | Link.Dropped_down -> Lost_down)
  in
  walk now false hops

(* Wire-true delivery: decode this receiver's copy of the frame at
   arrival.  Corruption is applied here rather than inside the link
   because multicast replicates the frame at branch points — a bit error
   on one branch must not damage the copy another receiver reads.  A
   single flipped bit is always caught by the Internet checksum, so a
   corrupted frame either fails the codec's verification or fails to
   parse at all; both count as wire rejects and the PDU is never
   delivered. *)
let deliver_wire t w ~src ~dst ~bytes ~sent_at ~at ~corrupted lease =
  Pool.retain lease;
  Engine.schedule_anon t.engine ~at (fun () ->
         let buf = Pool.lease_buf lease in
         let buf =
           if not corrupted then buf
           else begin
             (* Sole holder (plus this delivery): flip in place.  Shared
                frame: flip a private copy. *)
             let target =
               if Pool.lease_refs lease = 1 then buf else Bytes.sub buf 0 bytes
             in
             let bit = Rng.int t.rng (bytes * 8) in
             let byte = bit lsr 3 in
             Bytes.set_uint8 target byte
               (Bytes.get_uint8 target byte lxor (1 lsl (bit land 7)));
             target
           end
         in
         (match w.wh_decode buf 0 bytes with
         | None -> w.wh_rejected <- w.wh_rejected + 1
         | Some payload -> (
           w.wh_decoded <- w.wh_decoded + 1;
           match Hashtbl.find t.handlers dst with
           | exception Not_found -> ()
           | handler ->
             t.s_delivered <- t.s_delivered + 1;
             handler
               {
                 payload;
                 src;
                 dst;
                 wire_bytes = bytes;
                 sent_at;
                 received_at = at;
                 corrupted;
               }));
         w.wh_release lease)

let deliver t ~src ~dst ~bytes ~sent_at ~frame payload outcome =
  match outcome with
  | Lost_queue -> t.s_dropped_queue <- t.s_dropped_queue + 1
  | Lost_down -> t.s_dropped_down <- t.s_dropped_down + 1
  | Lost_mtu -> t.s_dropped_mtu <- t.s_dropped_mtu + 1
  | Arrives (at, corrupted) -> (
    if corrupted then t.s_corrupted <- t.s_corrupted + 1;
    match (t.wire, frame) with
    | Some w, Some lease ->
      deliver_wire t w ~src ~dst ~bytes ~sent_at ~at ~corrupted lease
    | _ ->
      Engine.schedule_anon t.engine ~at (fun () ->
          match Hashtbl.find t.handlers dst with
          | exception Not_found -> ()
          | handler ->
            t.s_delivered <- t.s_delivered + 1;
            handler
              {
                payload;
                src;
                dst;
                wire_bytes = bytes;
                sent_at;
                received_at = at;
                corrupted;
              }))

let send_on_cache t ~cache ~frame ~src ~dst ~bytes payload =
  match Topology.route t.topology ~src ~dst with
  | None -> (
    match t.remote with
    | Some hand_over ->
      t.s_remote_out <- t.s_remote_out + 1;
      hand_over ~src ~dst ~bytes payload
    | None -> t.s_dropped_no_route <- t.s_dropped_no_route + 1)
  | Some hops ->
    let sent_at = Engine.now t.engine in
    deliver t ~src ~dst ~bytes ~sent_at ~frame payload
      (traverse t ~cache ~frame ~bytes hops)

(* Serialize the PDU into a leased wire buffer once per injection; the
   sender's reference is dropped after the fan-out, so the buffer
   returns to the pool when the last scheduled delivery releases it. *)
let encode_frame t ~bytes payload =
  match t.wire with
  | None -> None
  | Some w ->
    let lease = w.wh_encode payload bytes in
    w.wh_encoded <- w.wh_encoded + 1;
    Some lease

let release_frame t frame =
  match (t.wire, frame) with
  | Some w, Some lease -> w.wh_release lease
  | _ -> ()

let send t ~src ~dst ~bytes payload =
  if bytes <= 0 then invalid_arg "Network.send: non-positive size";
  t.s_sent <- t.s_sent + 1;
  t.s_bytes_sent <- t.s_bytes_sent + bytes;
  let frame = encode_frame t ~bytes payload in
  (
  send_on_cache t ~cache:None ~frame ~src ~dst ~bytes payload);
  release_frame t frame

let multicast t ~src ~dsts ~bytes payload =
  if bytes <= 0 then invalid_arg "Network.multicast: non-positive size";
  t.s_sent <- t.s_sent + 1;
  t.s_bytes_sent <- t.s_bytes_sent + bytes;
  let cache = Some (ref []) in
  let frame = encode_frame t ~bytes payload in
  List.iter (fun dst -> send_on_cache t ~cache ~frame ~src ~dst ~bytes payload) dsts;
  release_frame t frame

let stats t =
  {
    sent = t.s_sent;
    delivered = t.s_delivered;
    dropped_queue = t.s_dropped_queue;
    dropped_down = t.s_dropped_down;
    dropped_no_route = t.s_dropped_no_route;
    dropped_mtu = t.s_dropped_mtu;
    corrupted = t.s_corrupted;
    bytes_sent = t.s_bytes_sent;
  }

let reset_stats t =
  t.s_sent <- 0;
  t.s_delivered <- 0;
  t.s_dropped_queue <- 0;
  t.s_dropped_down <- 0;
  t.s_dropped_no_route <- 0;
  t.s_dropped_mtu <- 0;
  t.s_corrupted <- 0;
  t.s_bytes_sent <- 0;
  List.iter Link.reset_stats (Topology.links t.topology)

type hop_state = {
  link_name : string;
  bandwidth : float;
  utilization : float;
  cross_traffic : float;
  queue_delay : Time.t;
  hop_ber : float;
  hop_mtu : int;
  up : bool;
}

let path_state t ~src ~dst =
  match Topology.route t.topology ~src ~dst with
  | None -> []
  | Some hops ->
    let now = Engine.now t.engine in
    let snapshot link =
      {
        link_name = Link.name link;
        bandwidth = Link.bandwidth_bps link;
        utilization = Link.utilization_estimate link ~now;
        cross_traffic = Link.background_utilization link;
        queue_delay = Link.queue_delay_estimate link ~now;
        hop_ber = Link.ber link;
        hop_mtu = Link.mtu link;
        up = Link.is_up link;
      }
    in
    List.map snapshot hops

let one_way_estimate hops bytes =
  List.fold_left
    (fun acc link ->
      Time.add acc
        (Time.add (Link.propagation link)
           (Time.of_rate ~bits:(bytes * 8) ~bps:(Link.bandwidth_bps link))))
    Time.zero hops

let rtt_estimate t ~src ~dst ~bytes =
  match (Topology.route t.topology ~src ~dst, Topology.route t.topology ~src:dst ~dst:src) with
  | Some fwd, Some back ->
    Some (Time.add (one_way_estimate fwd bytes) (one_way_estimate back bytes))
  | Some fwd, None -> Some (Time.add (one_way_estimate fwd bytes) (one_way_estimate fwd bytes))
  | None, _ -> None
