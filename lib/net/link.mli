(** One network hop: a channel plus the output queue feeding it.

    A link models the four network factors §2.1 names — channel speed,
    propagation delay, bit-error rate and congestion at the switching node
    driving the link.  Transmission uses a fluid FIFO model: the link is
    busy until the previously accepted packet finishes serializing; a new
    packet waits (queueing delay), and is dropped when the wait would
    exceed the queue's capacity.  Background utilization models cross
    traffic: it scales down the bandwidth available to foreground packets
    and adds congestive loss as utilization approaches saturation. *)

open Adaptive_sim

type t
(** A link with mutable transmission state. *)

val create :
  ?name:string ->
  bandwidth_bps:float ->
  propagation:Time.t ->
  ?queue_pkts:int ->
  ?ber:float ->
  ?mtu:int ->
  unit ->
  t
(** [create ~bandwidth_bps ~propagation ()] makes a link.  [queue_pkts]
    (default 64) bounds the output queue; [ber] (default 0) is the
    bit-error rate; [mtu] (default 65535) the maximum transmission unit in
    bytes. *)

val name : t -> string
(** Identifier for reports. *)

val bandwidth_bps : t -> float
(** Raw channel speed. *)

val propagation : t -> Time.t
(** One-way propagation delay. *)

val mtu : t -> int
(** Maximum transmission unit, bytes. *)

val ber : t -> float
(** Bit-error rate. *)

val queue_capacity : t -> int
(** Output queue bound, packets. *)

val set_background_utilization : t -> float -> unit
(** Set the fraction of the channel consumed by cross traffic, clamped to
    [\[0, 0.98\]]. *)

val background_utilization : t -> float
(** Current cross-traffic load. *)

val fail : t -> unit
(** Take the link down: every subsequent transmission is dropped. *)

val repair : t -> unit
(** Bring a failed link back up. *)

val is_up : t -> bool
(** Whether the link currently forwards traffic. *)

val set_ber : t -> float -> unit
(** Override the bit-error rate (clamped to [>= 0]); fault injection uses
    this for BER bursts. *)

val set_mtu : t -> int -> unit
(** Override the MTU; fault injection uses this for path-MTU shrinks.
    Raises [Invalid_argument] when non-positive. *)

type verdict =
  | Transmitted of { departs : Time.t; corrupted : bool }
      (** The packet leaves the far end of this hop at [departs];
          [corrupted] reports a bit error somewhere in the packet. *)
  | Dropped_queue  (** Output queue overflow (congestive loss). *)
  | Dropped_down  (** The link is failed. *)

val transmit :
  t ->
  ?frame:Bytes.t * int * int ->
  rng:Rng.t ->
  now:Time.t ->
  arrival:Time.t ->
  bytes:int ->
  unit ->
  verdict
(** [transmit link ~rng ~now ~arrival ~bytes ()] offers a packet of [bytes]
    bytes to the link; [arrival] is when the packet reaches this hop
    ([>= now]).  Queueing, serialization at the congestion-scaled rate,
    propagation and loss are applied; statistics are updated.

    In wire-true mode the caller threads the physical frame through the
    hop as [?frame:(buf, off, len)].  The link checks the wire-true
    invariant — the byte image is exactly the [bytes] the simulator
    accounts for (raising [Invalid_argument] on drift) — and counts the
    frame in {!frames_carried}.  Corruption stays a verdict flag here;
    the network applies it to each receiver's copy of the frame, because
    multicast replicates frames at branch points downstream of the
    hop. *)

val frames_carried : t -> int
(** Physical frames threaded through this link in wire-true mode. *)

val utilization_estimate : t -> now:Time.t -> float
(** Foreground + background utilization estimate in [\[0,1\]]; the signal
    the MANTTS network monitor samples. *)

val queue_delay_estimate : t -> now:Time.t -> Time.t
(** Current wait a newly arriving packet would incur. *)

type stats = {
  accepted : int;
  dropped_queue : int;
  dropped_down : int;
  corrupted : int;
  bytes_carried : int;
}
(** Cumulative per-link counters. *)

val stats : t -> stats
(** Read the counters. *)

val reset_stats : t -> unit
(** Zero the counters (transmission state is preserved). *)

val touch_config : unit -> unit
(** Bump the global link/route configuration generation.  Called by every
    link parameter mutation and by topology route edits. *)

val config_generation : unit -> int
(** Current configuration generation.  Monotonic and global: any link or
    route mutation anywhere bumps it.  Layers that memoize values derived
    from link properties (e.g. the MANTTS synthesis cache) compare
    generations to invalidate precisely instead of guessing at a TTL. *)
