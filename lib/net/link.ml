open Adaptive_sim

type stats = {
  accepted : int;
  dropped_queue : int;
  dropped_down : int;
  corrupted : int;
  bytes_carried : int;
}

type t = {
  name : string;
  bandwidth_bps : float;
  propagation : Time.t;
  queue_pkts : int;
  mutable ber : float;
  mutable mtu : int;
  mutable busy_until : Time.t;
  mutable background : float;
  mutable up : bool;
  mutable accepted : int;
  mutable dropped_queue : int;
  mutable dropped_down : int;
  mutable corrupted_count : int;
  mutable bytes_carried : int;
  mutable frames_carried : int;
}

(* Atomic: default names must stay unique when parallel campaign tasks
   (lib/fleet) build their stacks concurrently. *)
let counter = Atomic.make 0

(* Configuration generation: bumped by every mutation of a parameter that
   feeds path characterization (BER, MTU, up/down, cross traffic, route
   edits — topology calls [touch_config] too).  Higher layers memoize
   values derived from link properties and use this to invalidate; it is
   global across links, so a bump only costs spurious re-derivation. *)
let config_gen = Atomic.make 0
let touch_config () = Atomic.incr config_gen
let config_generation () = Atomic.get config_gen

let create ?name ~bandwidth_bps ~propagation ?(queue_pkts = 64) ?(ber = 0.0)
    ?(mtu = 65535) () =
  if bandwidth_bps <= 0.0 then invalid_arg "Link.create: non-positive bandwidth";
  let name =
    match name with
    | Some n -> n
    | None -> Printf.sprintf "link%d" (1 + Atomic.fetch_and_add counter 1)
  in
  {
    name;
    bandwidth_bps;
    propagation;
    queue_pkts;
    ber;
    mtu;
    busy_until = Time.zero;
    background = 0.0;
    up = true;
    accepted = 0;
    dropped_queue = 0;
    dropped_down = 0;
    corrupted_count = 0;
    bytes_carried = 0;
    frames_carried = 0;
  }

let name t = t.name
let bandwidth_bps t = t.bandwidth_bps
let propagation t = t.propagation
let mtu t = t.mtu
let ber t = t.ber
let queue_capacity t = t.queue_pkts

let set_background_utilization t u =
  touch_config ();
  t.background <- Float.max 0.0 (Float.min 0.98 u)

let background_utilization t = t.background

let fail t = touch_config (); t.up <- false
let repair t = touch_config (); t.up <- true
let is_up t = t.up

let set_ber t ber = touch_config (); t.ber <- Float.max 0.0 ber

let set_mtu t mtu =
  if mtu <= 0 then invalid_arg "Link.set_mtu: non-positive MTU";
  touch_config ();
  t.mtu <- mtu

let effective_bps t = t.bandwidth_bps *. (1.0 -. t.background)

let serialization t bytes = Time.of_rate ~bits:(bytes * 8) ~bps:(effective_bps t)

type verdict =
  | Transmitted of { departs : Time.t; corrupted : bool }
  | Dropped_queue
  | Dropped_down

(* Congestive random early loss ramps up as cross traffic saturates the
   queue: zero below 70% utilization, then quadratic up to 25% at 98%. *)
let congestive_loss_probability u =
  if u <= 0.70 then 0.0
  else
    let x = (u -. 0.70) /. 0.28 in
    0.25 *. x *. x

let transmit t ?frame ~rng ~now:_ ~arrival ~bytes () =
  (* Wire-true invariant: when the caller threads the physical frame
     through the hop, the accounted size and the byte image must agree —
     accounting drift between the simulator's [bytes] and the codec's
     output is a bug, not a modeling choice. *)
  (match frame with
  | Some (fb, foff, flen) ->
    if flen <> bytes then
      invalid_arg "Link.transmit: frame length disagrees with accounted bytes";
    if foff < 0 || foff + flen > Bytes.length fb then
      invalid_arg "Link.transmit: frame slice out of range";
    t.frames_carried <- t.frames_carried + 1
  | None -> ());
  if not t.up then begin
    t.dropped_down <- t.dropped_down + 1;
    Dropped_down
  end
  else begin
    let ser = serialization t bytes in
    let start = Time.max arrival t.busy_until in
    let wait = Time.diff start arrival in
    (* The queue holds [queue_pkts] full-size packets' worth of service
       time regardless of the arriving packet's own size — otherwise a
       small acknowledgment waiting behind one data packet would already
       count as overflow. *)
    let queue_limit = t.queue_pkts * Stdlib.max 1 (serialization t t.mtu) in
    let early_drop = Rng.bernoulli rng (congestive_loss_probability t.background) in
    if wait > queue_limit || early_drop then begin
      t.dropped_queue <- t.dropped_queue + 1;
      Dropped_queue
    end
    else begin
      t.busy_until <- Time.add start ser;
      t.accepted <- t.accepted + 1;
      t.bytes_carried <- t.bytes_carried + bytes;
      let p_clean = (1.0 -. t.ber) ** float_of_int (bytes * 8) in
      let corrupted = Rng.bernoulli rng (1.0 -. p_clean) in
      if corrupted then t.corrupted_count <- t.corrupted_count + 1;
      Transmitted { departs = Time.add t.busy_until t.propagation; corrupted }
    end
  end

let utilization_estimate t ~now =
  let backlog = Time.diff t.busy_until now in
  let fg = if backlog <= 0 then 0.0 else Float.min 1.0 (float_of_int backlog /. 1e7) in
  Float.min 1.0 (t.background +. (fg *. (1.0 -. t.background)))

let queue_delay_estimate t ~now = Time.max 0 (Time.diff t.busy_until now)

let frames_carried t = t.frames_carried

let stats t =
  {
    accepted = t.accepted;
    dropped_queue = t.dropped_queue;
    dropped_down = t.dropped_down;
    corrupted = t.corrupted_count;
    bytes_carried = t.bytes_carried;
  }

let reset_stats t =
  t.accepted <- 0;
  t.dropped_queue <- 0;
  t.dropped_down <- 0;
  t.corrupted_count <- 0;
  t.bytes_carried <- 0
