(** Candidate-path routing with automatic failover.

    §4.1.2's implicit-reconfiguration triggers include "intermediate
    switching node failure" and "routing changes" — this module supplies
    the routing half: each host pair carries an ordered list of candidate
    paths, and a periodic monitor keeps the best {e live} candidate
    installed in the {!Topology}.  When a hop on the active path fails the
    route moves to the next live candidate (e.g. terrestrial → satellite);
    when a better candidate recovers, traffic fails back.  The MANTTS
    session monitors then observe the change through their
    [Route_changed] and delay conditions and adapt the transport
    configuration. *)

open Adaptive_sim

type t
(** A routing table over one topology. *)

val create : Engine.t -> Topology.t -> t
(** Routing state for a topology. *)

val set_candidates :
  t -> src:Topology.addr -> dst:Topology.addr -> Link.t list list -> unit
(** Register the ordered candidate paths for one direction (most
    preferred first; must be non-empty, as must each path).  Immediately
    installs the first live candidate (or the first candidate when none
    is fully live). *)

val set_symmetric_candidates :
  t -> a:Topology.addr -> b:Topology.addr -> Link.t list list -> unit
(** Register the same candidates for both directions; reverse paths use
    fresh full-duplex mirror links (see
    {!Topology.set_symmetric_route}). *)

val active_index : t -> src:Topology.addr -> dst:Topology.addr -> int option
(** Which candidate is currently installed (0 = most preferred). *)

val reevaluate : t -> unit
(** Scan every registered pair once, installing the best live candidate
    where it differs from the active one. *)

val monitor : ?every:Time.t -> t -> Engine.Timer.timer
(** Run {!reevaluate} periodically (default every 250 ms) — the routing
    protocol's convergence loop.  Cancel the returned timer to stop. *)

val links : t -> Link.t list
(** Every link appearing in any registered candidate path (deduplicated
    by physical identity), including standby candidates not currently
    installed in the topology.  Fault injection uses this to partition a
    host pair: failing only {!Topology.links} would leave standby paths
    for the failover monitor to escape onto. *)

val failovers : t -> int
(** Route changes applied since creation (failovers and failbacks). *)

val log : t -> (Time.t * Topology.addr * Topology.addr * int) list
(** Every route change, oldest first: time, src, dst, new candidate
    index. *)
