(** The network substrate: unicast and multicast packet delivery.

    The network is parametric in the transport PDU type ['m], so the
    transport system above it defines its own headers while the network
    charges realistic wire costs: per-hop queueing, serialization at the
    congestion-scaled rate, propagation, queue-overflow loss and bit-error
    corruption.  Oversized packets (beyond the path MTU) are dropped and
    counted — segmentation is the transport's job, sized during MANTTS
    negotiation.

    Multicast replicates at branch points: each physical link on the
    union of the receivers' routes carries the packet {e once}, which is
    exactly the resource the paper's reliable-multicast configuration
    exploits against an N-unicast baseline. *)

open Adaptive_sim
open Adaptive_buf

type addr = Topology.addr
(** Host address. *)

type 'm recv = {
  payload : 'm;  (** The PDU as sent. *)
  src : addr;  (** Sender address. *)
  dst : addr;  (** This receiver's address. *)
  wire_bytes : int;  (** Size charged on the wire. *)
  sent_at : Time.t;  (** When the sender injected the packet. *)
  received_at : Time.t;  (** Delivery time at this receiver. *)
  corrupted : bool;  (** A bit error occurred on some hop; whether anyone
                         notices is up to the error-detection mechanism. *)
}
(** Delivery record handed to a host's receive handler. *)

type 'm t
(** A network carrying PDUs of type ['m]. *)

val create : Engine.t -> rng:Rng.t -> Topology.t -> 'm t
(** Build a network over a topology, drawing loss/corruption randomness
    from [rng] and scheduling deliveries on the engine. *)

val engine : 'm t -> Engine.t
(** The engine deliveries are scheduled on. *)

val topology : 'm t -> Topology.t
(** The underlying topology. *)

val fresh_conn_id : 'm t -> int
(** Allocate the next connection id (1, 2, …) in this network's
    namespace.  Per-network — not process-global — so a freshly built
    stack always numbers its connections (and therefore its UNITES
    session reports) identically, however many stacks ran before it or
    run beside it on other domains.  Under a {!set_conn_stripe}
    configuration the ids are [offset + 1, stride + offset + 1, …]. *)

val set_conn_stripe : 'm t -> stride:int -> offset:int -> unit
(** Stripe this network's connection ids: the k-th allocation returns
    [(k-1) * stride + offset + 1].  Partitioned (megaswarm) runs give
    partition [p] of [P] the stripe [~stride:P ~offset:p], so ids are
    globally unique and a cross-partition session never collides with a
    local one at the remote dispatcher.  Must be called before any id is
    allocated; [stride >= 1], [0 <= offset < stride]
    ([Invalid_argument] otherwise). *)

val attach : 'm t -> addr -> ('m recv -> unit) -> unit
(** Register the receive handler for a host (replacing any previous
    one). *)

val detach : 'm t -> addr -> unit
(** Remove a host's handler; subsequent deliveries to it are dropped. *)

val send : 'm t -> src:addr -> dst:addr -> bytes:int -> 'm -> unit
(** Inject a [bytes]-byte packet now.  Delivery (or silent loss) follows
    from the route's link models.  No route, an oversized packet, or a
    detached destination count as drops. *)

val multicast : 'm t -> src:addr -> dsts:addr list -> bytes:int -> 'm -> unit
(** Inject one packet toward every destination, paying each shared link
    once (replication happens where routes diverge). *)

(** {2 Remote delivery (partitioned simulations)}

    A domain-sharded simulation runs one network per partition; packets
    between partitions leave through a {e remote-delivery hook} and
    re-enter through {!deliver_remote}.  The shard coordinator owns
    everything in between — the cross-partition latency model and the
    conservative synchronization that keeps event order deterministic. *)

val set_remote :
  'm t -> (src:addr -> dst:addr -> bytes:int -> 'm -> unit) -> unit
(** Install the hand-over hook: packets whose destination has no local
    route are passed to it (synchronously, at injection time) instead of
    counting as [dropped_no_route].  Incompatible with wire-true mode —
    a frame lease cannot cross a domain boundary — so installing both
    raises [Invalid_argument]. *)

val deliver_remote :
  'm t -> src:addr -> dst:addr -> bytes:int -> sent_at:Time.t -> 'm -> unit
(** Deliver a packet that crossed a remote path: invokes [dst]'s handler
    immediately, at the engine's current time (the caller schedules this
    at the modeled arrival time).  Unknown destinations are dropped
    silently, mirroring a detached local host. *)

val remote_counts : 'm t -> int * int
(** [(handed_over, delivered_in)] counts for the remote path. *)

type stats = {
  sent : int;  (** Packets injected (multicast counts once). *)
  delivered : int;  (** Deliveries executed (per receiver). *)
  dropped_queue : int;  (** Lost to queue overflow. *)
  dropped_down : int;  (** Lost to failed links. *)
  dropped_no_route : int;  (** No route to destination. *)
  dropped_mtu : int;  (** Exceeded path MTU. *)
  corrupted : int;  (** Delivered with bit errors. *)
  bytes_sent : int;  (** Total bytes injected. *)
}
(** Network-wide counters. *)

val stats : 'm t -> stats
(** Read the counters. *)

val reset_stats : 'm t -> unit
(** Zero the network counters and every link's counters. *)

type hop_state = {
  link_name : string;
  bandwidth : float;  (** Raw channel speed, bits/s. *)
  utilization : float;  (** Estimated total load in [\[0,1\]]. *)
  cross_traffic : float;  (** Background (cross-traffic) share of the
                              load — the congestion signal reconfiguration
                              policies react to, as opposed to the
                              session's own queueing. *)
  queue_delay : Time.t;  (** Current queueing delay estimate. *)
  hop_ber : float;  (** Bit-error rate. *)
  hop_mtu : int;  (** MTU in bytes. *)
  up : bool;  (** Link is forwarding. *)
}
(** Snapshot of one hop, as sampled by the MANTTS network monitor. *)

val path_state : 'm t -> src:addr -> dst:addr -> hop_state list
(** Per-hop snapshot of the current route ([[]] when unrouted). *)

val rtt_estimate : 'm t -> src:addr -> dst:addr -> bytes:int -> Time.t option
(** Crude round-trip estimate for a [bytes]-byte packet and an equal-size
    reply on the reverse route, ignoring queueing.  Used to seed
    retransmission timers before any measurement exists. *)

(** {2 Wire-true mode}

    Opt-in: PDUs cross the network as real bytes.  Each injection is
    serialized once into a leased pool buffer, the frame is threaded
    through every {!Link.transmit} on the route, and each receiver
    decodes its copy at delivery — after which the lease reference is
    dropped and the buffer returns to the pool (multicast holds one
    reference per pending delivery).  The hooks keep the network
    parametric in ['m]: the transport supplies the codec.

    Corruption becomes physical: a corrupted arrival has one real bit
    flipped in that receiver's copy of the frame, and the codec's
    checksum — not a simulation flag — decides detection.  A single-bit
    error is always caught by the Internet checksum, so corrupted frames
    are rejected (counted, never delivered).  On a lossless route the
    hooks perform no extra random draws and add zero simulated time, so
    wire-true and value-mode runs produce identical traces. *)

val set_wire :
  'm t ->
  encode:('m -> int -> Pool.lease) ->
  decode:(Bytes.t -> int -> int -> 'm option) ->
  release:(Pool.lease -> unit) ->
  unit
(** [set_wire t ~encode ~decode ~release] switches [t] to wire-true
    mode.  [encode pdu bytes] must serialize into a lease holding exactly
    [bytes] bytes; [decode buf off len] parses a frame (returning [None]
    to reject it); [release] drops one lease reference.  Decoded payloads
    must not alias the frame past the delivery callback — detach them. *)

val wire_active : 'm t -> bool
(** Whether wire-true mode is installed. *)

type wire_stats = {
  wire_encoded : int;  (** Frames serialized (one per injection). *)
  wire_decoded : int;  (** Frames successfully decoded at delivery. *)
  wire_rejected : int;  (** Frames rejected by the codec (corruption). *)
}

val wire_stats : 'm t -> wire_stats option
(** Wire-mode counters, [None] when value mode. *)
