open Adaptive_sim

type addr = int

type t = {
  mutable names : string list; (* reversed registration order *)
  routes : (addr * addr, Link.t list) Hashtbl.t;
}

let create () = { names = []; routes = Hashtbl.create 16 }

let add_host t name =
  let addr = List.length t.names in
  t.names <- name :: t.names;
  addr

let host_name t addr =
  let n = List.length t.names in
  if addr < 0 || addr >= n then raise Not_found;
  List.nth t.names (n - 1 - addr)

let hosts t = List.mapi (fun i name -> (i, name)) (List.rev t.names)

let set_route t ~src ~dst hops =
  if hops = [] then invalid_arg "Topology.set_route: empty route";
  Link.touch_config ();
  Hashtbl.replace t.routes (src, dst) hops

(* Full duplex: the reverse direction gets its own transmitter and queue. *)
let mirror_link l =
  Link.create
    ~name:(Link.name l ^ "~rev")
    ~bandwidth_bps:(Link.bandwidth_bps l) ~propagation:(Link.propagation l)
    ~queue_pkts:(Link.queue_capacity l) ~ber:(Link.ber l) ~mtu:(Link.mtu l) ()

let set_symmetric_route t ~a ~b hops =
  set_route t ~src:a ~dst:b hops;
  set_route t ~src:b ~dst:a (List.rev_map mirror_link hops)

let route t ~src ~dst = Hashtbl.find_opt t.routes (src, dst)

let on_route t ~src ~dst f =
  match route t ~src ~dst with
  | None -> None
  | Some hops -> Some (f hops)

let path_mtu t ~src ~dst =
  on_route t ~src ~dst (fun hops ->
      List.fold_left (fun acc l -> min acc (Link.mtu l)) max_int hops)

let path_propagation t ~src ~dst =
  on_route t ~src ~dst (fun hops ->
      List.fold_left (fun acc l -> Time.add acc (Link.propagation l)) Time.zero hops)

let bottleneck_bps t ~src ~dst =
  on_route t ~src ~dst (fun hops ->
      List.fold_left (fun acc l -> Float.min acc (Link.bandwidth_bps l)) infinity hops)

let links t =
  let seen = ref [] in
  Hashtbl.iter
    (fun _ hops ->
      List.iter
        (fun l -> if not (List.memq l !seen) then seen := l :: !seen)
        hops)
    t.routes;
  List.rev !seen
