open Adaptive_sim

type entry = { candidates : Link.t list list; mutable active : int }

type t = {
  engine : Engine.t;
  topology : Topology.t;
  table : (Topology.addr * Topology.addr, entry) Hashtbl.t;
  mutable change_count : int;
  mutable changes : (Time.t * Topology.addr * Topology.addr * int) list; (* newest first *)
}

let create engine topology =
  { engine; topology; table = Hashtbl.create 16; change_count = 0; changes = [] }

let path_live hops = List.for_all Link.is_up hops

(* Index of the most preferred fully-live candidate; the most preferred
   one when everything is down (traffic will black-hole there, which is
   what a broken network does). *)
let best_candidate candidates =
  let rec scan i = function
    | [] -> 0
    | hops :: rest -> if path_live hops then i else scan (i + 1) rest
  in
  scan 0 candidates

let install t ~src ~dst entry index =
  entry.active <- index;
  Topology.set_route t.topology ~src ~dst (List.nth entry.candidates index)

let set_candidates t ~src ~dst candidates =
  if candidates = [] || List.exists (fun p -> p = []) candidates then
    invalid_arg "Routing.set_candidates: empty candidate list or path";
  let entry = { candidates; active = best_candidate candidates } in
  Hashtbl.replace t.table (src, dst) entry;
  install t ~src ~dst entry entry.active

let set_symmetric_candidates t ~a ~b candidates =
  set_candidates t ~src:a ~dst:b candidates;
  set_candidates t ~src:b ~dst:a
    (List.map (fun hops -> List.rev_map Topology.mirror_link hops) candidates)

let active_index t ~src ~dst =
  Option.map (fun e -> e.active) (Hashtbl.find_opt t.table (src, dst))

let reevaluate t =
  Hashtbl.iter
    (fun (src, dst) entry ->
      let best = best_candidate entry.candidates in
      if best <> entry.active then begin
        install t ~src ~dst entry best;
        t.change_count <- t.change_count + 1;
        t.changes <- (Engine.now t.engine, src, dst, best) :: t.changes
      end)
    t.table

let monitor ?(every = Time.ms 250) t =
  Engine.Timer.periodic t.engine ~interval:every (fun () -> reevaluate t)

let links t =
  let seen = ref [] in
  Hashtbl.iter
    (fun _ entry ->
      List.iter
        (List.iter (fun l -> if not (List.memq l !seen) then seen := l :: !seen))
        entry.candidates)
    t.table;
  List.rev !seen

let failovers t = t.change_count
let log t = List.rev t.changes
