type t = int

let zero = 0
let ns n = n
let us n = n * 1_000
let ms n = n * 1_000_000
let sec s = int_of_float (Float.round (s *. 1e9))
let minutes n = n * 60_000_000_000
let to_sec t = float_of_int t /. 1e9
let to_ms t = float_of_int t /. 1e6
let to_us t = float_of_int t /. 1e3
let add a b = a + b
let diff a b = a - b
let max (a : t) b = Stdlib.max a b
let min (a : t) b = Stdlib.min a b
let compare (a : t) b = Stdlib.compare a b

let ticks t ~shift = t asr shift

let of_rate ~bits ~bps =
  if bps <= 0.0 then invalid_arg "Time.of_rate: non-positive rate";
  int_of_float (Float.round (float_of_int bits /. bps *. 1e9))

let pp fmt t =
  let a = abs t in
  if a < 1_000 then Format.fprintf fmt "%dns" t
  else if a < 1_000_000 then Format.fprintf fmt "%.2fus" (to_us t)
  else if a < 1_000_000_000 then Format.fprintf fmt "%.2fms" (to_ms t)
  else Format.fprintf fmt "%.3fs" (to_sec t)

let to_string t = Format.asprintf "%a" pp t
