(** Lightweight event tracing and counting.

    UNITES' whitebox instrumentation is built on trace points: named
    counters plus an optional bounded log of recent events.  Counters are
    always cheap; the event log can be switched off entirely so that
    instrumentation overhead experiments can compare both modes. *)

type t
(** A trace sink. *)

type entry = { at : Time.t; category : string; detail : string }
(** One logged event. *)

val create : ?log_capacity:int -> unit -> t
(** [create ()] makes a sink.  [log_capacity] bounds the retained event log
    (default 4096; 0 disables logging while keeping counters). *)

val count : t -> string -> unit
(** Increment the named counter by one. *)

val count_by : t -> string -> int -> unit
(** Increment the named counter by [n]. *)

val event : t -> at:Time.t -> category:string -> detail:string -> unit
(** Increment the category counter and, if logging is enabled, append an
    entry (oldest entries are dropped once capacity is reached). *)

val counter : t -> string -> int
(** Current value of the named counter (0 if never incremented). *)

val counters : t -> (string * int) list
(** All counters, sorted by name. *)

val entries : t -> entry list
(** Retained log entries, oldest first. *)

val dropped : t -> int
(** Events discarded from the bounded log: oldest entries evicted once
    [log_capacity] was reached, plus every event when logging is disabled
    ([log_capacity = 0]).  Counters and {!hash} still cover them. *)

val hash : t -> int64
(** FNV-1a digest of every event recorded so far ([at], [category] and
    [detail], in arrival order) — including events the bounded log has
    since evicted.  Two runs are replay-equal iff their hashes match. *)

val clear : t -> unit
(** Reset counters, log, dropped count and hash. *)
