(* SplitMix64 (Steele, Lea & Flood 2014) on two 32-bit limbs held as
   immediate ints.  [Int64] arithmetic boxes every intermediate value —
   at two Bernoulli draws per link transmission the boxed implementation
   cost ~60 minor words per packet on the hot path.  All limb products
   are formed from 16-bit halves so nothing approaches the 63-bit
   overflow boundary, and a draw is allocation-free.  Bit-for-bit
   identical to the boxed version: [bits64] reassembles the canonical
   [Int64] on demand, and the trace digests of seeded runs are
   unchanged.

   [r_hi]/[r_lo] are the mixer's output cell: OCaml cannot return two
   ints without allocating a pair, so [step] deposits the mixed output
   into the generator's own record and callers read it immediately. *)

type t = {
  mutable s_hi : int;
  mutable s_lo : int;
  mutable r_hi : int;
  mutable r_lo : int;
}

let mask16 = 0xFFFF
let mask32 = 0xFFFFFFFF

(* golden gamma 0x9E3779B97F4A7C15 *)
let gamma_hi = 0x9E3779B9
let gamma_lo = 0x7F4A7C15

(* mix64 multipliers *)
let m1_hi = 0xBF58476D
let m1_lo = 0x1CE4E5B9
let m2_hi = 0x94D049BB
let m2_lo = 0x133111EB

(* (a_hi,a_lo) * (b_hi,b_lo) mod 2^64 via 16-bit half-limbs: every
   column sum stays below 2^34, far from overflow. *)
let mul_hi a_hi a_lo b_hi b_lo =
  let a0 = a_lo land mask16 and a1 = a_lo lsr 16 in
  let a2 = a_hi land mask16 and a3 = a_hi lsr 16 in
  let b0 = b_lo land mask16 and b1 = b_lo lsr 16 in
  let b2 = b_hi land mask16 and b3 = b_hi lsr 16 in
  let c0 = a0 * b0 in
  let c1 = (a1 * b0) + (a0 * b1) in
  let c2 = (a2 * b0) + (a1 * b1) + (a0 * b2) in
  let c3 = (a3 * b0) + (a2 * b1) + (a1 * b2) + (a0 * b3) in
  let low = c0 + ((c1 land mask16) lsl 16) in
  ((c1 lsr 16) + c2 + ((c3 land mask16) lsl 16) + (low lsr 32)) land mask32

let mul_lo a_lo b_lo =
  let a0 = a_lo land mask16 and a1 = a_lo lsr 16 in
  let b0 = b_lo land mask16 and b1 = b_lo lsr 16 in
  let c0 = a0 * b0 in
  let c1 = (a1 * b0) + (a0 * b1) in
  (c0 + ((c1 land mask16) lsl 16)) land mask32

(* Logical right shift of the 64-bit value (z_hi, z_lo), 0 < k < 32. *)
let xs_hi z_hi k = z_hi lsr k

let xs_lo z_hi z_lo k =
  ((z_lo lsr k) lor ((z_hi land ((1 lsl k) - 1)) lsl (32 - k))) land mask32

(* mix64: z ^= z>>30; z *= m1; z ^= z>>27; z *= m2; z ^= z>>31.
   Deposits the result in [dst.r_hi]/[dst.r_lo]. *)
let mix_into dst z_hi z_lo =
  let z_lo' = z_lo lxor xs_lo z_hi z_lo 30 in
  let z_hi' = z_hi lxor xs_hi z_hi 30 in
  let p_hi = mul_hi z_hi' z_lo' m1_hi m1_lo in
  let p_lo = mul_lo z_lo' m1_lo in
  let q_lo = p_lo lxor xs_lo p_hi p_lo 27 in
  let q_hi = p_hi lxor xs_hi p_hi 27 in
  let r_hi = mul_hi q_hi q_lo m2_hi m2_lo in
  let r_lo = mul_lo q_lo m2_lo in
  dst.r_lo <- r_lo lxor xs_lo r_hi r_lo 31;
  dst.r_hi <- r_hi lxor xs_hi r_hi 31

let create seed =
  (* mix64 (Int64.of_int seed): the limbs are the seed's two's-complement
     32-bit halves. *)
  let t = { s_hi = 0; s_lo = 0; r_hi = 0; r_lo = 0 } in
  mix_into t ((seed asr 32) land mask32) (seed land mask32);
  t.s_hi <- t.r_hi;
  t.s_lo <- t.r_lo;
  t

(* Advance: state <- state + gamma (mod 2^64); mix into the output
   cell. *)
let step t =
  let low = t.s_lo + gamma_lo in
  let lo = low land mask32 in
  let hi = (t.s_hi + gamma_hi + (low lsr 32)) land mask32 in
  t.s_lo <- lo;
  t.s_hi <- hi;
  mix_into t hi lo

let bits64 t =
  step t;
  Int64.logor
    (Int64.shift_left (Int64.of_int t.r_hi) 32)
    (Int64.of_int t.r_lo)

let split t =
  step t;
  { s_hi = t.r_hi; s_lo = t.r_lo; r_hi = 0; r_lo = 0 }

let split_ix t i =
  if i < 0 then invalid_arg "Rng.split_ix: negative index";
  (* Jump (i+1) gammas ahead of the current state and scramble: a pure
     function of (state, i), so deriving stream i never advances [t] and
     two tasks with distinct indices get decorrelated streams.  (The
     output cell is scratch, so clobbering it does not count as
     advancing.) *)
  let k = i + 1 in
  let k_hi = (k asr 32) land mask32 and k_lo = k land mask32 in
  let j_hi = mul_hi gamma_hi gamma_lo k_hi k_lo in
  let j_lo = mul_lo gamma_lo k_lo in
  let low = t.s_lo + j_lo in
  let lo = low land mask32 in
  let hi = (t.s_hi + j_hi + (low lsr 32)) land mask32 in
  mix_into t hi lo;
  { s_hi = t.r_hi; s_lo = t.r_lo; r_hi = 0; r_lo = 0 }

let copy t = { s_hi = t.s_hi; s_lo = t.s_lo; r_hi = 0; r_lo = 0 }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: non-positive bound";
  step t;
  (* [Int64.logand (bits64 t) (Int64.of_int max_int)] in limb form:
     OCaml's max_int is 2^62 - 1, so keep the low 30 bits of the high
     limb. *)
  let v = ((t.r_hi land 0x3FFFFFFF) lsl 32) lor t.r_lo in
  v mod bound

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: empty range";
  lo + int t (hi - lo + 1)

let float t bound =
  (* 53 high bits give a uniform double in [0,1):
     (output lsr 11) = r_hi * 2^21 + (r_lo lsr 11), exact in a double. *)
  step t;
  let v = (float_of_int t.r_hi *. 2097152.0) +. float_of_int (t.r_lo lsr 11) in
  v /. 9007199254740992.0 *. bound

let uniform t lo hi = lo +. float t (hi -. lo)

let bool t =
  step t;
  t.r_lo land 1 = 1

let bernoulli t p = float t 1.0 < p

let exponential t ~mean =
  let u = 1.0 -. float t 1.0 in
  -.mean *. log u

let geometric t ~p =
  if p <= 0.0 || p > 1.0 then invalid_arg "Rng.geometric: p outside (0,1]";
  if p = 1.0 then 0
  else
    let u = 1.0 -. float t 1.0 in
    int_of_float (Float.floor (log u /. log (1.0 -. p)))

let gaussian t ~mu ~sigma =
  let u1 = 1.0 -. float t 1.0 in
  let u2 = float t 1.0 in
  mu +. (sigma *. sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2))

let pareto t ~shape ~scale =
  let u = 1.0 -. float t 1.0 in
  scale /. (u ** (1.0 /. shape))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
