type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

(* SplitMix64 output mixing (Steele, Lea & Flood 2014). *)
let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix64 (Int64.of_int seed) }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t = { state = bits64 t }

let split_ix t i =
  if i < 0 then invalid_arg "Rng.split_ix: negative index";
  (* Jump (i+1) gammas ahead of the current state and scramble: a pure
     function of (state, i), so deriving stream i never advances [t] and
     two tasks with distinct indices get decorrelated streams. *)
  { state = mix64 (Int64.add t.state (Int64.mul golden_gamma (Int64.of_int (i + 1)))) }

let copy t = { state = t.state }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: non-positive bound";
  let mask = Int64.of_int max_int in
  let v = Int64.to_int (Int64.logand (bits64 t) mask) in
  v mod bound

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: empty range";
  lo + int t (hi - lo + 1)

let float t bound =
  (* 53 high bits give a uniform double in [0,1). *)
  let v = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  v /. 9007199254740992.0 *. bound

let uniform t lo hi = lo +. float t (hi -. lo)
let bool t = Int64.logand (bits64 t) 1L = 1L
let bernoulli t p = float t 1.0 < p

let exponential t ~mean =
  let u = 1.0 -. float t 1.0 in
  -.mean *. log u

let geometric t ~p =
  if p <= 0.0 || p > 1.0 then invalid_arg "Rng.geometric: p outside (0,1]";
  if p = 1.0 then 0
  else
    let u = 1.0 -. float t 1.0 in
    int_of_float (Float.floor (log u /. log (1.0 -. p)))

let gaussian t ~mu ~sigma =
  let u1 = 1.0 -. float t 1.0 in
  let u2 = float t 1.0 in
  mu +. (sigma *. sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2))

let pareto t ~shape ~scale =
  let u = 1.0 -. float t 1.0 in
  scale /. (u ** (1.0 /. shape))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
