(** Streaming statistics accumulators.

    UNITES stores one {!t} per metric.  The accumulator keeps exact count,
    mean and variance (Welford's algorithm), exact min/max, and a bounded
    reservoir sample from which quantiles are estimated, so memory stays
    constant no matter how many samples a long simulation produces. *)

type t
(** A mutable statistics accumulator. *)

val create : ?reservoir:int -> ?seed:int -> unit -> t
(** [create ()] is an empty accumulator.  [reservoir] bounds the number of
    retained samples used for quantile estimation (default 8192). *)

val add : t -> float -> unit
(** Record one observation. *)

val count : t -> int
(** Number of observations recorded. *)

val total : t -> float
(** Sum of all observations. *)

val mean : t -> float
(** Arithmetic mean; [nan] when empty. *)

val variance : t -> float
(** Unbiased sample variance; [nan] with fewer than two observations. *)

val stddev : t -> float
(** Square root of {!variance}. *)

val min_value : t -> float
(** Smallest observation; [nan] when empty. *)

val max_value : t -> float
(** Largest observation; [nan] when empty. *)

val quantile : t -> float -> float
(** [quantile t q] estimates the [q]-quantile ([0 <= q <= 1]) from the
    reservoir; [0.0] when empty (quantiles of nothing are defined as
    zero so rendered reports and emitted JSON never carry NaN). *)

val merge : t -> t -> t
(** [merge a b] is a fresh accumulator summarizing both inputs.  Merging
    an empty accumulator into a non-empty one preserves the non-empty
    side's moments and extrema exactly. *)

val clear : t -> unit
(** Forget every observation. *)

type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float;
  p95 : float;
  p99 : float;
}
(** Immutable snapshot of an accumulator. *)

val summarize : t -> summary
(** Snapshot the accumulator.  An empty accumulator summarizes to the
    all-zero summary ([n = 0]), not to NaNs. *)

val pp_summary : Format.formatter -> summary -> unit
(** One-line printer for a summary. *)
