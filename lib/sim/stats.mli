(** Streaming statistics accumulators.

    UNITES stores one {!t} per metric.  The accumulator keeps exact count,
    mean and variance (Welford's algorithm), exact min/max, and one of two
    bounded quantile sketches, so memory stays constant no matter how many
    samples a long simulation produces. *)

type estimator =
  | Reservoir
      (** Vitter reservoir sample (default): quantiles interpolated from a
          uniform sample of up to [reservoir] retained observations. *)
  | P2
      (** The P² streaming estimator (Jain & Chlamtac 1985): five markers
          per reported quantile, O(1) update, ~15 floats of state however
          long the stream — what megaswarm-scale UNITES repositories use
          to keep per-bucket memory flat. *)

type t
(** A mutable statistics accumulator. *)

val create : ?estimator:estimator -> ?reservoir:int -> ?seed:int -> unit -> t
(** [create ()] is an empty accumulator.  [reservoir] bounds the number of
    retained samples used for quantile estimation (default 8192); it is
    ignored by the {!P2} estimator, which stores no samples. *)

val estimator_kind : t -> estimator
(** Which quantile sketch this accumulator runs. *)

val add : t -> float -> unit
(** Record one observation. *)

val count : t -> int
(** Number of observations recorded. *)

val total : t -> float
(** Sum of all observations. *)

val mean : t -> float
(** Arithmetic mean; [nan] when empty. *)

val variance : t -> float
(** Unbiased sample variance; [nan] with fewer than two observations. *)

val stddev : t -> float
(** Square root of {!variance}. *)

val min_value : t -> float
(** Smallest observation; [nan] when empty. *)

val max_value : t -> float
(** Largest observation; [nan] when empty. *)

val quantile : t -> float -> float
(** [quantile t q] estimates the [q]-quantile ([0 <= q <= 1]) from the
    sketch; [0.0] when empty (quantiles of nothing are defined as zero
    so rendered reports and emitted JSON never carry NaN).  Under {!P2}
    the estimate is exact for the first five observations, a marker read
    at the tracked quantiles (0.5, 0.95, 0.99) afterwards, and a
    monotone piecewise-linear interpolation between markers and the
    exact extrema elsewhere. *)

val merge : t -> t -> t
(** [merge a b] is a fresh accumulator (with [a]'s estimator) summarizing
    both inputs.  Merging an empty accumulator into a non-empty one
    preserves the non-empty side's moments and extrema exactly.  Merged
    {!P2} quantiles are approximate: each side replays a bounded sketch
    of its distribution rather than its full stream. *)

val clear : t -> unit
(** Forget every observation. *)

type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float;
  p95 : float;
  p99 : float;
}
(** Immutable snapshot of an accumulator. *)

val summarize : t -> summary
(** Snapshot the accumulator.  An empty accumulator summarizes to the
    all-zero summary ([n = 0]), not to NaNs. *)

val pp_summary : Format.formatter -> summary -> unit
(** One-line printer for a summary. *)
