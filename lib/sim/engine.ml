(* Discrete-event engine: hierarchical timer wheel + heap tiers.

   Transport workloads arm far more timers than they expire: every
   in-flight segment re-arms a retransmission timer that is almost always
   cancelled by an acknowledgment first.  The event queue is therefore
   organized in three tiers:

   - [ready]   — a small binary heap ordered by (deadline, seq) holding
                 only events at or below the wheel watermark tick; the
                 next event to fire is always its root.
   - wheel     — two levels of 256 slots (2^16 ns ≈ 65 µs ticks, so
                 level 0 spans ~16.8 ms and level 1 ~4.3 s) of intrusive
                 doubly-linked lists.  Insert and cancel are O(1); a
                 cancelled timer is unlinked immediately and never touches
                 a heap.
   - [overflow]— a heap for events beyond the wheel horizon.  Cancelled
                 entries in either heap die lazily and are compacted out
                 eagerly once they exceed half the heap.

   Events are ordered globally by (deadline, seq) with [seq] assigned at
   (re)schedule time, so the wheel path fires the exact sequence the pure
   heap path would — the equivalence property test in [test_sim.ml]
   checks this on randomized schedule/cancel/reschedule workloads.

   The {!Timer} analog of the paper's [TKO_Event] reuses one event record
   and one closure per timer across every re-arm, so the rtx/ack timer
   churn of a session allocates nothing after the timer is created. *)

let slot_bits = 8
let num_slots = 1 lsl slot_bits
let slot_mask = num_slots - 1
let tick_shift = 16

(* Locations an event record can occupy. *)
let loc_none = -1
let loc_ready = -2
let loc_overflow = -3

type event = {
  mutable deadline : Time.t;
  mutable seq : int; (* assigned per (re)schedule; global FIFO tie-break *)
  mutable live : bool;
  mutable loc : int; (* loc_* or wheel position [level*256 + slot] *)
  mutable action : unit -> unit;
  mutable prev : event; (* intrusive wheel-slot list; [nil] when detached *)
  mutable next : event;
  pooled : bool; (* recycled into the free list after firing *)
}

(* Shared sentinel: never linked, never mutated. *)
let rec nil =
  { deadline = 0; seq = 0; live = false; loc = loc_none;
    action = (fun () -> ()); prev = nil; next = nil; pooled = false }

type t = {
  mutable clock : Time.t;
  mutable next_seq : int;
  use_wheel : bool;
  ready : event Heap.t;
  mutable ready_dead : int;
  overflow : event Heap.t;
  mutable overflow_dead : int;
  slots : event array; (* [0,256): level 0; [256,512): level 1 *)
  mutable free : event; (* intrusive free list of recycled anon events *)
  mutable c0 : int; (* events resident in level 0 *)
  mutable c1 : int; (* events resident in level 1 *)
  mutable wtick : int; (* watermark: events at ticks <= wtick are in [ready] *)
  mutable live_count : int;
  mutable fired : int;
  (* whitebox counters *)
  mutable rearmed : int;
  mutable wheel_inserts : int;
  mutable ready_inserts : int;
  mutable overflow_inserts : int;
  mutable wheel_cancels : int;
  mutable lazy_cancels : int;
  mutable cascades : int;
  mutable compactions : int;
}

type handle = t * event

let create ?(backend = `Wheel) () =
  {
    clock = Time.zero;
    next_seq = 0;
    use_wheel = (backend = `Wheel);
    ready = Heap.create ();
    ready_dead = 0;
    overflow = Heap.create ();
    overflow_dead = 0;
    slots = Array.make (2 * num_slots) nil;
    free = nil;
    c0 = 0;
    c1 = 0;
    wtick = 0;
    live_count = 0;
    fired = 0;
    rearmed = 0;
    wheel_inserts = 0;
    ready_inserts = 0;
    overflow_inserts = 0;
    wheel_cancels = 0;
    lazy_cancels = 0;
    cascades = 0;
    compactions = 0;
  }

let now t = t.clock

(* ------------------------------------------------------------ wheel ops *)

let wheel_link t e pos =
  let head = t.slots.(pos) in
  e.prev <- nil;
  e.next <- head;
  if head != nil then head.prev <- e;
  t.slots.(pos) <- e;
  e.loc <- pos

let wheel_unlink t e =
  let pos = e.loc in
  if e.prev == nil then t.slots.(pos) <- e.next else e.prev.next <- e.next;
  if e.next != nil then e.next.prev <- e.prev;
  e.prev <- nil;
  e.next <- nil;
  e.loc <- loc_none;
  if pos < num_slots then t.c0 <- t.c0 - 1 else t.c1 <- t.c1 - 1

let push_ready t e =
  Heap.push_seq t.ready ~key:e.deadline ~seq:e.seq e;
  e.loc <- loc_ready

(* Route a freshly (re)armed event to its tier. *)
let enqueue t e =
  if not t.use_wheel then begin
    push_ready t e;
    t.ready_inserts <- t.ready_inserts + 1
  end
  else begin
    let tk = Time.ticks e.deadline ~shift:tick_shift in
    if tk <= t.wtick then begin
      push_ready t e;
      t.ready_inserts <- t.ready_inserts + 1
    end
    else begin
      let rel = tk - t.wtick in
      if rel <= num_slots then begin
        wheel_link t e (tk land slot_mask);
        t.c0 <- t.c0 + 1;
        t.wheel_inserts <- t.wheel_inserts + 1
      end
      else if rel <= num_slots * num_slots then begin
        wheel_link t e (num_slots + ((tk asr slot_bits) land slot_mask));
        t.c1 <- t.c1 + 1;
        t.wheel_inserts <- t.wheel_inserts + 1
      end
      else begin
        Heap.push_seq t.overflow ~key:e.deadline ~seq:e.seq e;
        e.loc <- loc_overflow;
        t.overflow_inserts <- t.overflow_inserts + 1
      end
    end
  end

(* ------------------------------------------------- cancellation + GC *)

let dead_pending t = t.ready_dead + t.overflow_dead

let compact t heap ~keep_stat =
  Heap.filter_in_place heap ~f:(fun _key seq e -> e.live && e.seq = seq);
  t.compactions <- t.compactions + 1;
  keep_stat ()

let maybe_compact_ready t =
  if t.ready_dead > 64 && 2 * t.ready_dead > Heap.length t.ready then
    compact t t.ready ~keep_stat:(fun () -> t.ready_dead <- 0)

let maybe_compact_overflow t =
  if t.overflow_dead > 64 && 2 * t.overflow_dead > Heap.length t.overflow then
    compact t t.overflow ~keep_stat:(fun () -> t.overflow_dead <- 0)

let cancel_event t e =
  if e.live then begin
    e.live <- false;
    t.live_count <- t.live_count - 1;
    if e.loc >= 0 then begin
      wheel_unlink t e;
      t.wheel_cancels <- t.wheel_cancels + 1
    end
    else if e.loc = loc_ready then begin
      e.loc <- loc_none;
      t.ready_dead <- t.ready_dead + 1;
      t.lazy_cancels <- t.lazy_cancels + 1;
      maybe_compact_ready t
    end
    else if e.loc = loc_overflow then begin
      e.loc <- loc_none;
      t.overflow_dead <- t.overflow_dead + 1;
      t.lazy_cancels <- t.lazy_cancels + 1;
      maybe_compact_overflow t
    end
  end

(* ------------------------------------------------------------- refill *)

let ready_live t = Heap.length t.ready - t.ready_dead

(* Pull overflow entries that have come inside the watermark. *)
let drain_overflow t =
  while
    (not (Heap.is_empty t.overflow))
    && Time.ticks (Heap.top_key t.overflow) ~shift:tick_shift <= t.wtick
  do
    let e = Heap.top_value t.overflow in
    let sq = Heap.top_seq t.overflow in
    Heap.drop_top t.overflow;
    if e.live && e.seq = sq then push_ready t e
    else t.overflow_dead <- t.overflow_dead - 1
  done

(* Move every event of an expired level-0 slot into [ready]; all entries
   of one slot share a single tick, which equals [t.wtick] when called. *)
let flush_l0_slot t pos =
  let e = ref t.slots.(pos) in
  t.slots.(pos) <- nil;
  while !e != nil do
    let cur = !e in
    e := cur.next;
    cur.prev <- nil;
    cur.next <- nil;
    t.c0 <- t.c0 - 1;
    push_ready t cur
  done

(* Redistribute the level-1 slot whose 256-tick window starts at
   [t.wtick]: ticks equal to the watermark go to [ready], the rest fan
   out into level 0. *)
let cascade_l1 t =
  let pos = num_slots + ((t.wtick asr slot_bits) land slot_mask) in
  let e = ref t.slots.(pos) in
  t.slots.(pos) <- nil;
  if !e != nil then t.cascades <- t.cascades + 1;
  while !e != nil do
    let cur = !e in
    e := cur.next;
    cur.prev <- nil;
    cur.next <- nil;
    t.c1 <- t.c1 - 1;
    let tk = Time.ticks cur.deadline ~shift:tick_shift in
    if tk <= t.wtick then push_ready t cur
    else begin
      wheel_link t cur (tk land slot_mask);
      t.c0 <- t.c0 + 1
    end
  done

(* Advance the watermark until [ready] holds a live event (or nothing is
   queued outside it).  Each iteration jumps to the next candidate tick:
   the earliest occupied level-0 slot, the next level-1 cascade boundary,
   or the earliest overflow entry — whichever comes first. *)
let refill t =
  if t.use_wheel then
    while
      ready_live t = 0 && (t.c0 > 0 || t.c1 > 0 || not (Heap.is_empty t.overflow))
    do
      if t.c0 = 0 && t.c1 = 0 then begin
        (* Wheels empty: jump straight to the overflow's earliest tick. *)
        let tk = Time.ticks (Heap.top_key t.overflow) ~shift:tick_shift in
        if tk > t.wtick then t.wtick <- tk;
        drain_overflow t
      end
      else begin
        let boundary = ((t.wtick asr slot_bits) + 1) lsl slot_bits in
        let target = ref boundary in
        if t.c0 > 0 then begin
          let d = ref 1 in
          let limit = boundary - t.wtick in
          let found = ref 0 in
          while !found = 0 && !d <= limit do
            let tk = t.wtick + !d in
            if t.slots.(tk land slot_mask) != nil then found := tk;
            incr d
          done;
          if !found <> 0 then target := !found
        end;
        if not (Heap.is_empty t.overflow) then begin
          let otk = Time.ticks (Heap.top_key t.overflow) ~shift:tick_shift in
          if otk < !target then target := otk
        end;
        t.wtick <- !target;
        if !target = boundary then cascade_l1 t;
        flush_l0_slot t (!target land slot_mask);
        drain_overflow t
      end
    done

(* Deadline of the next live event, or [max_int] when none is pending.
   Stale heads of [ready] are discarded on the way. *)
let next_live_deadline t =
  if ready_live t = 0 then refill t;
  if ready_live t = 0 then max_int
  else begin
    let continue = ref true in
    while !continue do
      let e = Heap.top_value t.ready in
      if e.live && e.seq = Heap.top_seq t.ready then continue := false
      else begin
        Heap.drop_top t.ready;
        t.ready_dead <- t.ready_dead - 1
      end
    done;
    Heap.top_key t.ready
  end

(* ---------------------------------------------------------- scheduling *)

let schedule_event t e ~at =
  if at < t.clock then invalid_arg "Engine.schedule: event in the past";
  e.deadline <- at;
  e.seq <- t.next_seq;
  t.next_seq <- t.next_seq + 1;
  e.live <- true;
  t.live_count <- t.live_count + 1;
  enqueue t e

let schedule t ~at f =
  let e =
    { deadline = 0; seq = 0; live = false; loc = loc_none; action = f;
      prev = nil; next = nil; pooled = false }
  in
  schedule_event t e ~at;
  (t, e)

let noop () = ()

(* Fire-and-forget scheduling: no handle, so the event record cannot
   escape and is recycled through [t.free] once it fires.  The hot data
   paths (packet delivery, ingress dispatch) schedule hundreds of
   thousands of these; reuse removes an event record plus a handle pair
   per occurrence from the minor heap. *)
let schedule_anon t ~at f =
  if t.free != nil then begin
    let e = t.free in
    t.free <- e.next;
    e.next <- nil;
    e.action <- f;
    schedule_event t e ~at
  end
  else
    let e =
      { deadline = 0; seq = 0; live = false; loc = loc_none; action = f;
        prev = nil; next = nil; pooled = true }
    in
    schedule_event t e ~at

let schedule_after t ~delay f = schedule t ~at:(Time.add t.clock delay) f
let cancel (t, e) = cancel_event t e
let is_pending (_, e) = e.live

let rec pop_live t =
  let e = Heap.top_value t.ready in
  let sq = Heap.top_seq t.ready in
  Heap.drop_top t.ready;
  if e.live && e.seq = sq then e
  else begin
    t.ready_dead <- t.ready_dead - 1;
    pop_live t
  end

let step t =
  if ready_live t = 0 then refill t;
  if ready_live t = 0 then false
  else begin
    let e = pop_live t in
    e.live <- false;
    e.loc <- loc_none;
    t.live_count <- t.live_count - 1;
    t.clock <- e.deadline;
    t.fired <- t.fired + 1;
    let action = e.action in
    if e.pooled then begin
      (* Recycle before running: the action may re-enter the scheduler,
         and an anon event has no handle that could observe the reuse. *)
      e.action <- noop;
      e.next <- t.free;
      t.free <- e
    end;
    action ();
    true
  end

let run ?until ?max_events t =
  let budget = ref (match max_events with None -> max_int | Some n -> n) in
  let limit = match until with None -> max_int | Some l -> l in
  let continue () =
    !budget > 0
    &&
    let at = next_live_deadline t in
    at <> max_int && at <= limit
  in
  while continue () do
    if step t then decr budget
  done;
  match until with
  | Some l when t.clock < l && !budget > 0 -> t.clock <- l
  | Some _ | None -> ()

let pending_events t = t.live_count
let events_fired t = t.fired

let next_deadline t =
  match next_live_deadline t with
  | d when d = max_int -> None
  | d -> Some d

(* --------------------------------------------------- whitebox counters *)

type counters = {
  events_fired : int;
  timers_rearmed : int;
  wheel_inserts : int;
  ready_inserts : int;
  overflow_inserts : int;
  wheel_cancels : int;
  lazy_cancels : int;
  cascades : int;
  compactions : int;
  dead_entries : int;
}

let counters t =
  {
    events_fired = t.fired;
    timers_rearmed = t.rearmed;
    wheel_inserts = t.wheel_inserts;
    ready_inserts = t.ready_inserts;
    overflow_inserts = t.overflow_inserts;
    wheel_cancels = t.wheel_cancels;
    lazy_cancels = t.lazy_cancels;
    cascades = t.cascades;
    compactions = t.compactions;
    dead_entries = dead_pending t;
  }

let wheel_hit_rate (t : t) =
  let total = t.wheel_inserts + t.ready_inserts + t.overflow_inserts in
  if total = 0 then 0.0 else float_of_int t.wheel_inserts /. float_of_int total

let cancelled_ratio (t : t) =
  let queued = Heap.length t.ready + Heap.length t.overflow + t.c0 + t.c1 in
  if queued = 0 then 0.0 else float_of_int (dead_pending t) /. float_of_int queued

(* -------------------------------------------------------------- timers *)

module Timer = struct
  type timer = {
    engine : t;
    ev : event;
    mutable period : Time.t; (* 0 = one-shot *)
    mutable count : int;
    callback : unit -> unit;
  }

  (* Re-arm the existing event record: fresh seq, no new closure. *)
  let rearm timer delay =
    let t = timer.engine in
    t.rearmed <- t.rearmed + 1;
    schedule_event t timer.ev ~at:(Time.add t.clock delay)

  let expire timer =
    timer.count <- timer.count + 1;
    (* Periodic timers re-arm before the callback runs, so events the
       callback schedules at the same instant fire after the next tick —
       same FIFO order as the seed engine. *)
    if timer.period > 0 then rearm timer timer.period;
    timer.callback ()

  let make engine ~period ~delay f =
    let e =
      { deadline = 0; seq = 0; live = false; loc = loc_none;
        action = (fun () -> ()); prev = nil; next = nil; pooled = false }
    in
    let timer = { engine; ev = e; period; count = 0; callback = f } in
    e.action <- (fun () -> expire timer);
    schedule_event engine e ~at:(Time.add engine.clock delay);
    timer

  let one_shot engine ~delay f = make engine ~period:0 ~delay f

  let periodic engine ~interval f =
    if interval <= 0 then invalid_arg "Timer.periodic: non-positive interval";
    make engine ~period:interval ~delay:interval f

  let cancel timer =
    cancel_event timer.engine timer.ev;
    timer.period <- 0

  let reschedule timer ~delay =
    cancel_event timer.engine timer.ev;
    rearm timer delay

  let is_active timer = timer.ev.live
  let expirations timer = timer.count
end
