(** Discrete-event simulation engine.

    The engine owns the simulated clock and an event queue.  Everything in
    the reproduction — packet arrivals, retransmission timers, congestion
    phase changes, application traffic — runs as events scheduled here.
    Events at the same instant fire in scheduling order, so runs are fully
    deterministic.

    Internally the queue is a hierarchical timer wheel (O(1) insert and
    cancel for the short-horizon timers that dominate transport
    workloads) backed by a binary-heap overflow tier for far-future
    events; see the implementation notes in [engine.ml] and the
    "Simulator engine internals" section of DESIGN.md.  The [`Heap]
    backend bypasses the wheel and runs everything through one heap — it
    exists as the reference the equivalence property tests compare
    against.

    The {!Timer} submodule is the analog of the paper's [TKO_Event] class:
    one-shot or periodic timers that can be scheduled, cancelled, and
    rescheduled ([TKO_Event::schedule] / [expire] / [cancel]).  A timer
    owns one event record and one closure for its whole life, so
    re-arming it — the hot operation of every retransmission and
    acknowledgment path — allocates nothing. *)

type t
(** A simulation engine instance. *)

type handle
(** A cancellable reference to a scheduled event. *)

val create : ?backend:[ `Wheel | `Heap ] -> unit -> t
(** Fresh engine with the clock at {!Time.zero} and no pending events.
    [backend] (default [`Wheel]) selects the queue organization; both
    fire identical event sequences. *)

val now : t -> Time.t
(** Current simulated time. *)

val schedule : t -> at:Time.t -> (unit -> unit) -> handle
(** [schedule t ~at f] arranges for [f ()] to run at simulated time [at].
    Scheduling in the past raises [Invalid_argument]. *)

val schedule_after : t -> delay:Time.t -> (unit -> unit) -> handle
(** [schedule_after t ~delay f] is [schedule t ~at:(now t + delay) f]. *)

val schedule_anon : t -> at:Time.t -> (unit -> unit) -> unit
(** [schedule_anon t ~at f] is {!schedule} without a handle: the event
    cannot be cancelled or queried, and its record is recycled through an
    internal free list after it fires.  Use on fire-and-forget hot paths
    (per-PDU deliveries, ingress dispatch) where the event record and
    handle pair of {!schedule} would otherwise be allocated per packet. *)

val cancel : handle -> unit
(** Prevent the event from firing.  Cancelling a fired or already-cancelled
    event is a no-op.  Wheel-resident events are unlinked in O(1);
    heap-resident ones die lazily and are compacted out once they exceed
    half their tier. *)

val is_pending : handle -> bool
(** [true] until the event fires or is cancelled. *)

val step : t -> bool
(** Run the earliest pending event, advancing the clock to it.  Returns
    [false] when no event is pending. *)

val run : ?until:Time.t -> ?max_events:int -> t -> unit
(** Run events in time order until the queue is empty, the clock would
    pass [until], or [max_events] have fired. *)

val pending_events : t -> int
(** Number of scheduled (uncancelled) events. *)

val next_deadline : t -> Time.t option
(** Deadline of the earliest pending event, or [None] when the queue is
    empty.  Does not advance the clock or fire anything.  SHARD's
    skip-empty-window fast path uses this to jump the barrier clock over
    spans where no partition has work. *)

val events_fired : t -> int
(** Total events executed since creation. *)

(** Scheduler whitebox counters, reported through UNITES alongside the
    transport metrics so experiments can see scheduler overhead. *)
type counters = {
  events_fired : int;  (** Events executed. *)
  timers_rearmed : int;  (** {!Timer} re-arms that reused an event record. *)
  wheel_inserts : int;  (** Events enqueued into a wheel slot. *)
  ready_inserts : int;  (** Events enqueued straight into the ready heap. *)
  overflow_inserts : int;  (** Events beyond the wheel horizon. *)
  wheel_cancels : int;  (** O(1) unlink cancellations. *)
  lazy_cancels : int;  (** Cancellations left to die in a heap tier. *)
  cascades : int;  (** Level-1 slot redistributions into level 0. *)
  compactions : int;  (** Eager sweeps of cancelled heap entries. *)
  dead_entries : int;  (** Cancelled entries currently awaiting sweep. *)
}

val counters : t -> counters
(** Snapshot of the scheduler's whitebox counters. *)

val wheel_hit_rate : t -> float
(** Fraction of inserts served by a wheel slot (0 when nothing was
    inserted) — the wheel-vs-heap hit rate. *)

val cancelled_ratio : t -> float
(** Cancelled-but-unswept entries as a fraction of the queued population
    (0 when the queue is empty). *)

(** One-shot and periodic timers — the [TKO_Event] analog. *)
module Timer : sig
  type timer
  (** A timer bound to an engine. *)

  val one_shot : t -> delay:Time.t -> (unit -> unit) -> timer
  (** Fire once after [delay]. *)

  val periodic : t -> interval:Time.t -> (unit -> unit) -> timer
  (** Fire every [interval] until cancelled.  [interval] must be
      positive. *)

  val cancel : timer -> unit
  (** Stop the timer; idempotent. *)

  val reschedule : timer -> delay:Time.t -> unit
  (** Cancel any pending expiry and arm the timer to fire once after
      [delay] (for periodic timers the period resumes afterwards).
      Reuses the timer's event record and closure — no allocation. *)

  val is_active : timer -> bool
  (** [true] while the timer still has a pending expiry. *)

  val expirations : timer -> int
  (** Number of times the timer has fired. *)
end
