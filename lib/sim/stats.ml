type estimator = Reservoir | P2

(* The P² algorithm (Jain & Chlamtac 1985): one 5-marker structure per
   target quantile, updated in O(1) per observation with no stored
   samples.  The markers track the running estimate of the quantile and
   of four bracketing positions; heights move by parabolic (falling back
   to linear) interpolation as desired marker positions drift. *)
type p2m = {
  pq : float;  (* target quantile *)
  h : float array;  (* 5 marker heights *)
  np : float array;  (* actual marker positions, 1-based *)
  nd : float array;  (* desired marker positions *)
  dn : float array;  (* desired-position increments *)
}

let p2m_create q =
  {
    pq = q;
    h = Array.make 5 0.0;
    np = [| 1.0; 2.0; 3.0; 4.0; 5.0 |];
    nd = [| 1.0; 1.0 +. (2.0 *. q); 1.0 +. (4.0 *. q); 3.0 +. (2.0 *. q); 5.0 |];
    dn = [| 0.0; q /. 2.0; q; (1.0 +. q) /. 2.0; 1.0 |];
  }

let p2m_init m sorted5 =
  Array.blit sorted5 0 m.h 0 5;
  m.np.(0) <- 1.0;
  m.np.(1) <- 2.0;
  m.np.(2) <- 3.0;
  m.np.(3) <- 4.0;
  m.np.(4) <- 5.0;
  m.nd.(0) <- 1.0;
  m.nd.(1) <- 1.0 +. (2.0 *. m.pq);
  m.nd.(2) <- 1.0 +. (4.0 *. m.pq);
  m.nd.(3) <- 3.0 +. (2.0 *. m.pq);
  m.nd.(4) <- 5.0

let p2m_add m x =
  let k =
    if x < m.h.(0) then begin
      m.h.(0) <- x;
      0
    end
    else if x >= m.h.(4) then begin
      m.h.(4) <- x;
      3
    end
    else begin
      let k = ref 0 in
      for i = 1 to 3 do
        if x >= m.h.(i) then k := i
      done;
      !k
    end
  in
  for i = k + 1 to 4 do
    m.np.(i) <- m.np.(i) +. 1.0
  done;
  for i = 0 to 4 do
    m.nd.(i) <- m.nd.(i) +. m.dn.(i)
  done;
  for i = 1 to 3 do
    let d = m.nd.(i) -. m.np.(i) in
    if
      (d >= 1.0 && m.np.(i + 1) -. m.np.(i) > 1.0)
      || (d <= -1.0 && m.np.(i - 1) -. m.np.(i) < -1.0)
    then begin
      let s = if d >= 0.0 then 1.0 else -1.0 in
      let hi = m.h.(i) and hp = m.h.(i + 1) and hm = m.h.(i - 1) in
      let ni = m.np.(i) and np1 = m.np.(i + 1) and nm1 = m.np.(i - 1) in
      let parabolic =
        hi
        +. s /. (np1 -. nm1)
           *. (((ni -. nm1 +. s) *. (hp -. hi) /. (np1 -. ni))
              +. ((np1 -. ni -. s) *. (hi -. hm) /. (ni -. nm1)))
      in
      let next =
        if hm < parabolic && parabolic < hp then parabolic
        else if s > 0.0 then hi +. ((hp -. hi) /. (np1 -. ni))
        else hi -. ((hm -. hi) /. (nm1 -. ni))
      in
      m.h.(i) <- next;
      m.np.(i) <- ni +. s
    end
  done

(* Marker targets: exactly the quantiles {!summary} reports. *)
let p2_targets = [| 0.50; 0.95; 0.99 |]

type store =
  | Res of { data : float array; mutable stored : int; rng : Rng.t }
  | Stream of { head : float array; mutable markers : p2m array }

(* Scalar moments live in a float array rather than mutable record
   fields: a record mixing [n : int] with mutable floats keeps the
   floats boxed, so every [add] would allocate three fresh boxes on the
   minor heap.  Float-array stores are unboxed, making [add] for the
   moment scalars allocation-free on the hot path. *)
type t = { mutable n : int; q : float array; store : store }

let q_mean = 0
and q_m2 = 1
and q_sum = 2
and q_mn = 3
and q_mx = 4

let create ?(estimator = Reservoir) ?(reservoir = 8192) ?(seed = 0x5747) () =
  let store =
    match estimator with
    | Reservoir ->
      Res { data = Array.make reservoir 0.0; stored = 0; rng = Rng.create seed }
    | P2 ->
      (* Markers materialize lazily once five observations arrive: most
         per-session accumulators in a churning swarm see a handful of
         samples, and the three 5-marker structures are ~100 words that
         would dominate short-lived sessions' allocation. *)
      Stream { head = Array.make 5 0.0; markers = [||] }
  in
  { n = 0; q = [| 0.0; 0.0; 0.0; infinity; neg_infinity |]; store }

let estimator_kind t = match t.store with Res _ -> Reservoir | Stream _ -> P2

let reservoir_capacity t =
  match t.store with Res r -> Array.length r.data | Stream _ -> 8

let add t x =
  t.n <- t.n + 1;
  let q = t.q in
  q.(q_sum) <- q.(q_sum) +. x;
  let delta = x -. q.(q_mean) in
  q.(q_mean) <- q.(q_mean) +. (delta /. float_of_int t.n);
  q.(q_m2) <- q.(q_m2) +. (delta *. (x -. q.(q_mean)));
  if x < q.(q_mn) then q.(q_mn) <- x;
  if x > q.(q_mx) then q.(q_mx) <- x;
  match t.store with
  | Res r ->
    let cap = Array.length r.data in
    if r.stored < cap then begin
      r.data.(r.stored) <- x;
      r.stored <- r.stored + 1
    end
    else
      (* Vitter's algorithm R keeps a uniform sample of the stream. *)
      let j = Rng.int r.rng t.n in
      if j < cap then r.data.(j) <- x
  | Stream s ->
    if t.n <= 5 then begin
      s.head.(t.n - 1) <- x;
      if t.n = 5 then begin
        let sorted = Array.copy s.head in
        Array.sort Float.compare sorted;
        if s.markers = [||] then s.markers <- Array.map p2m_create p2_targets;
        Array.iter (fun m -> p2m_init m sorted) s.markers
      end
    end
    else
      (* Explicit loop: [Array.iter] with a closure capturing [x] would
         allocate on every single observation. *)
      let ms = s.markers in
      for i = 0 to Array.length ms - 1 do
        p2m_add (Array.unsafe_get ms i) x
      done

let count t = t.n
let total t = t.q.(q_sum)
let mean t = if t.n = 0 then nan else t.q.(q_mean)
let variance t = if t.n < 2 then nan else t.q.(q_m2) /. float_of_int (t.n - 1)
let stddev t = sqrt (variance t)
let min_value t = if t.n = 0 then nan else t.q.(q_mn)
let max_value t = if t.n = 0 then nan else t.q.(q_mx)

let sorted_quantile xs q =
  Array.sort Float.compare xs;
  let q = Float.max 0.0 (Float.min 1.0 q) in
  let pos = q *. float_of_int (Array.length xs - 1) in
  let lo = int_of_float (Float.floor pos) in
  let hi = int_of_float (Float.ceil pos) in
  if lo = hi then xs.(lo)
  else
    let w = pos -. float_of_int lo in
    (xs.(lo) *. (1.0 -. w)) +. (xs.(hi) *. w)

let quantile t q =
  match t.store with
  | Res r ->
    if r.stored = 0 then 0.0 else sorted_quantile (Array.sub r.data 0 r.stored) q
  | Stream s ->
    if t.n = 0 then 0.0
    else if t.n <= 5 then sorted_quantile (Array.sub s.head 0 t.n) q
    else begin
      (* Piecewise-linear through (0, min), the marker estimates, and
         (1, max).  Running max keeps the curve monotone even if marker
         heights cross on an adversarial stream. *)
      let mn = t.q.(q_mn) and mx = t.q.(q_mx) in
      let q = Float.max 0.0 (Float.min 1.0 q) in
      let pts = Array.make (Array.length s.markers + 2) (0.0, mn) in
      let level = ref mn in
      Array.iteri
        (fun i m ->
          level := Float.max !level (Float.min mx m.h.(2));
          pts.(i + 1) <- (m.pq, !level))
        s.markers;
      pts.(Array.length pts - 1) <- (1.0, mx);
      let result = ref mx in
      (try
         for i = 0 to Array.length pts - 2 do
           let x0, y0 = pts.(i) and x1, y1 = pts.(i + 1) in
           if q <= x1 then begin
             result :=
               (if x1 -. x0 <= 0.0 then y1
                else y0 +. ((q -. x0) /. (x1 -. x0) *. (y1 -. y0)));
             raise Exit
           end
         done
       with Exit -> ());
      !result
    end

(* Deterministically re-feed one accumulator's distribution sketch into
   another.  Reservoirs replay their stored sample; P² sketches replay a
   bounded number of reconstructed quantile points, so merging stays O(1)
   in the source stream length (the moments are corrected exactly by the
   caller either way). *)
let feed_into t src =
  match src.store with
  | Res r -> Array.iter (add t) (Array.sub r.data 0 r.stored)
  | Stream s ->
    if src.n > 0 then
      if src.n <= 5 then Array.iter (add t) (Array.sub s.head 0 src.n)
      else begin
        let k = min src.n 64 in
        for j = 0 to k - 1 do
          add t (quantile src ((float_of_int j +. 0.5) /. float_of_int k))
        done
      end

let merge a b =
  let t =
    create ~estimator:(estimator_kind a) ~reservoir:(reservoir_capacity a) ()
  in
  feed_into t a;
  feed_into t b;
  (* Correct the exact moments, which the sketches would only approximate. *)
  t.n <- a.n + b.n;
  t.q.(q_sum) <- a.q.(q_sum) +. b.q.(q_sum);
  if t.n > 0 then begin
    let na = float_of_int a.n and nb = float_of_int b.n in
    let am = a.q.(q_mean) and bm = b.q.(q_mean) in
    let delta = bm -. am in
    t.q.(q_mean) <- ((na *. am) +. (nb *. bm)) /. (na +. nb);
    t.q.(q_m2) <-
      a.q.(q_m2) +. b.q.(q_m2) +. (delta *. delta *. na *. nb /. (na +. nb))
  end;
  t.q.(q_mn) <- Float.min a.q.(q_mn) b.q.(q_mn);
  t.q.(q_mx) <- Float.max a.q.(q_mx) b.q.(q_mx);
  t

let clear t =
  t.n <- 0;
  t.q.(q_mean) <- 0.0;
  t.q.(q_m2) <- 0.0;
  t.q.(q_sum) <- 0.0;
  t.q.(q_mn) <- infinity;
  t.q.(q_mx) <- neg_infinity;
  match t.store with
  | Res r -> r.stored <- 0
  | Stream _ ->
    (* The head buffer refills and the markers re-initialize once five
       fresh observations arrive; [n] gates every read until then. *)
    ()

type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float;
  p95 : float;
  p99 : float;
}

let summarize (t : t) =
  if t.n = 0 then
    (* An empty accumulator has a defined (all-zero) summary rather than
       a NaN-riddled one, so downstream rendering and JSON stay sane. *)
    { n = 0; mean = 0.0; stddev = 0.0; min = 0.0; max = 0.0;
      p50 = 0.0; p95 = 0.0; p99 = 0.0 }
  else
    {
      n = t.n;
      mean = mean t;
      stddev = stddev t;
      min = min_value t;
      max = max_value t;
      p50 = quantile t 0.50;
      p95 = quantile t 0.95;
      p99 = quantile t 0.99;
    }

let pp_summary fmt s =
  Format.fprintf fmt
    "n=%d mean=%.4g sd=%.4g min=%.4g p50=%.4g p95=%.4g p99=%.4g max=%.4g" s.n
    s.mean s.stddev s.min s.p50 s.p95 s.p99 s.max
