type t = {
  mutable n : int;
  mutable mean : float;
  mutable m2 : float;
  mutable sum : float;
  mutable mn : float;
  mutable mx : float;
  reservoir : float array;
  mutable stored : int;
  rng : Rng.t;
}

let create ?(reservoir = 8192) ?(seed = 0x5747) () =
  {
    n = 0;
    mean = 0.0;
    m2 = 0.0;
    sum = 0.0;
    mn = infinity;
    mx = neg_infinity;
    reservoir = Array.make reservoir 0.0;
    stored = 0;
    rng = Rng.create seed;
  }

let add t x =
  t.n <- t.n + 1;
  t.sum <- t.sum +. x;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if x < t.mn then t.mn <- x;
  if x > t.mx then t.mx <- x;
  let cap = Array.length t.reservoir in
  if t.stored < cap then begin
    t.reservoir.(t.stored) <- x;
    t.stored <- t.stored + 1
  end
  else
    (* Vitter's algorithm R keeps a uniform sample of the stream. *)
    let j = Rng.int t.rng t.n in
    if j < cap then t.reservoir.(j) <- x

let count t = t.n
let total t = t.sum
let mean t = if t.n = 0 then nan else t.mean
let variance t = if t.n < 2 then nan else t.m2 /. float_of_int (t.n - 1)
let stddev t = sqrt (variance t)
let min_value t = if t.n = 0 then nan else t.mn
let max_value t = if t.n = 0 then nan else t.mx

let quantile t q =
  if t.stored = 0 then 0.0
  else begin
    let xs = Array.sub t.reservoir 0 t.stored in
    Array.sort Float.compare xs;
    let q = Float.max 0.0 (Float.min 1.0 q) in
    let pos = q *. float_of_int (t.stored - 1) in
    let lo = int_of_float (Float.floor pos) in
    let hi = int_of_float (Float.ceil pos) in
    if lo = hi then xs.(lo)
    else
      let w = pos -. float_of_int lo in
      (xs.(lo) *. (1.0 -. w)) +. (xs.(hi) *. w)
  end

let merge a b =
  let t = create ~reservoir:(Array.length a.reservoir) () in
  let feed src = Array.iter (add t) (Array.sub src.reservoir 0 src.stored) in
  feed a;
  feed b;
  (* Correct the exact moments, which reservoirs would only approximate. *)
  t.n <- a.n + b.n;
  t.sum <- a.sum +. b.sum;
  if t.n > 0 then begin
    let na = float_of_int a.n and nb = float_of_int b.n in
    let delta = b.mean -. a.mean in
    let nm = ((na *. a.mean) +. (nb *. b.mean)) /. (na +. nb) in
    t.mean <- nm;
    t.m2 <- a.m2 +. b.m2 +. (delta *. delta *. na *. nb /. (na +. nb))
  end;
  t.mn <- Float.min a.mn b.mn;
  t.mx <- Float.max a.mx b.mx;
  t

let clear t =
  t.n <- 0;
  t.mean <- 0.0;
  t.m2 <- 0.0;
  t.sum <- 0.0;
  t.mn <- infinity;
  t.mx <- neg_infinity;
  t.stored <- 0

type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float;
  p95 : float;
  p99 : float;
}

let summarize (t : t) =
  if t.n = 0 then
    (* An empty accumulator has a defined (all-zero) summary rather than
       a NaN-riddled one, so downstream rendering and JSON stay sane. *)
    { n = 0; mean = 0.0; stddev = 0.0; min = 0.0; max = 0.0;
      p50 = 0.0; p95 = 0.0; p99 = 0.0 }
  else
    {
      n = t.n;
      mean = mean t;
      stddev = stddev t;
      min = min_value t;
      max = max_value t;
      p50 = quantile t 0.50;
      p95 = quantile t 0.95;
      p99 = quantile t 0.99;
    }

let pp_summary fmt s =
  Format.fprintf fmt
    "n=%d mean=%.4g sd=%.4g min=%.4g p50=%.4g p95=%.4g p99=%.4g max=%.4g" s.n
    s.mean s.stddev s.min s.p50 s.p95 s.p99 s.max
