(* Flat-array binary min-heap.

   Keys, tie-break sequence numbers and values live in three parallel
   arrays so that a push allocates no per-entry box and a pop on the
   internal path ([top_key]/[top_value]/[drop_top]) allocates nothing at
   all.  The option-returning [peek]/[pop] remain as the convenient
   front door. *)

type 'a t = {
  mutable keys : int array;
  mutable seqs : int array;
  mutable vals : 'a array;
  mutable size : int;
  mutable next_seq : int;
}

let create () = { keys = [||]; seqs = [||]; vals = [||]; size = 0; next_seq = 0 }

let is_empty h = h.size = 0
let length h = h.size

(* Order by key, then sequence number: equal-key entries come out in
   ascending [seq] order, which the engine uses for FIFO tie-breaks. *)
let less h i j =
  let ki = h.keys.(i) and kj = h.keys.(j) in
  ki < kj || (ki = kj && h.seqs.(i) < h.seqs.(j))

let swap h i j =
  let k = h.keys.(i) in
  h.keys.(i) <- h.keys.(j);
  h.keys.(j) <- k;
  let s = h.seqs.(i) in
  h.seqs.(i) <- h.seqs.(j);
  h.seqs.(j) <- s;
  let v = h.vals.(i) in
  h.vals.(i) <- h.vals.(j);
  h.vals.(j) <- v

let grow h filler =
  let cap = Array.length h.keys in
  if h.size = cap then begin
    let ncap = if cap = 0 then 64 else cap * 2 in
    let nk = Array.make ncap 0 and ns = Array.make ncap 0 in
    let nv = Array.make ncap filler in
    Array.blit h.keys 0 nk 0 h.size;
    Array.blit h.seqs 0 ns 0 h.size;
    Array.blit h.vals 0 nv 0 h.size;
    h.keys <- nk;
    h.seqs <- ns;
    h.vals <- nv
  end

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if less h i parent then begin
      swap h i parent;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < h.size && less h l !smallest then smallest := l;
  if r < h.size && less h r !smallest then smallest := r;
  if !smallest <> i then begin
    swap h i !smallest;
    sift_down h !smallest
  end

let push_seq h ~key ~seq value =
  grow h value;
  h.keys.(h.size) <- key;
  h.seqs.(h.size) <- seq;
  h.vals.(h.size) <- value;
  h.size <- h.size + 1;
  sift_up h (h.size - 1)

let push h ~key value =
  let seq = h.next_seq in
  h.next_seq <- h.next_seq + 1;
  push_seq h ~key ~seq value

let top_key h =
  if h.size = 0 then invalid_arg "Heap.top_key: empty heap";
  h.keys.(0)

let top_seq h =
  if h.size = 0 then invalid_arg "Heap.top_seq: empty heap";
  h.seqs.(0)

let top_value h =
  if h.size = 0 then invalid_arg "Heap.top_value: empty heap";
  h.vals.(0)

let drop_top h =
  if h.size = 0 then invalid_arg "Heap.drop_top: empty heap";
  h.size <- h.size - 1;
  if h.size > 0 then begin
    h.keys.(0) <- h.keys.(h.size);
    h.seqs.(0) <- h.seqs.(h.size);
    h.vals.(0) <- h.vals.(h.size);
    sift_down h 0
  end;
  (* Drop the vacated slot's reference so popped entries don't pin their
     payload (the root's value is live inside the heap anyway). *)
  if h.size > 0 then h.vals.(h.size) <- h.vals.(0)

let peek h = if h.size = 0 then None else Some (h.keys.(0), h.vals.(0))

let pop h =
  if h.size = 0 then None
  else begin
    let k = h.keys.(0) and v = h.vals.(0) in
    drop_top h;
    Some (k, v)
  end

let filter_in_place h ~f =
  let kept = ref 0 in
  for i = 0 to h.size - 1 do
    if f h.keys.(i) h.seqs.(i) h.vals.(i) then begin
      let j = !kept in
      if j <> i then begin
        h.keys.(j) <- h.keys.(i);
        h.seqs.(j) <- h.seqs.(i);
        h.vals.(j) <- h.vals.(i)
      end;
      incr kept
    end
  done;
  (* Release references past the new end. *)
  if !kept > 0 then
    for i = !kept to h.size - 1 do
      h.vals.(i) <- h.vals.(0)
    done;
  h.size <- !kept;
  (* Floyd heap construction: O(n). *)
  for i = (h.size / 2) - 1 downto 0 do
    sift_down h i
  done

let clear h =
  h.size <- 0;
  h.keys <- [||];
  h.seqs <- [||];
  h.vals <- [||]

let rec drain h ~f =
  match pop h with
  | None -> ()
  | Some (k, v) ->
    f k v;
    drain h ~f
