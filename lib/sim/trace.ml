type entry = { at : Time.t; category : string; detail : string }

type t = {
  counters : (string, int ref) Hashtbl.t;
  log : entry Queue.t;
  capacity : int;
  mutable dropped : int;
  mutable h_hi : int; (* FNV state, top 32 bits *)
  mutable h_lo : int; (* FNV state, low 32 bits *)
}

(* FNV-1a, 64-bit.  The running hash folds in every event (whether or not
   the bounded log retained it), so two runs with identical event streams
   hash identically even after the log wraps.

   The state lives in two 32-bit limbs held as immediate ints: [Int64]
   arithmetic boxes every intermediate value, which made hashing cost
   ~9 words *per byte* on the event hot path.  The FNV prime
   0x100000001b3 factors into limbs 0x100 and 0x1b3, so every limb
   product stays far below 62 bits and the whole fold is allocation-free.
   [hash] reassembles the canonical [Int64] on demand — the rendered
   digests are bit-identical to the boxed implementation. *)
let mask32 = 0xFFFFFFFF
let fnv_offset_hi = 0xcbf29ce4
let fnv_offset_lo = 0x84222325

let create ?(log_capacity = 4096) () =
  {
    counters = Hashtbl.create 32;
    log = Queue.create ();
    capacity = log_capacity;
    dropped = 0;
    h_hi = fnv_offset_hi;
    h_lo = fnv_offset_lo;
  }

(* One FNV-1a step: state <- (state xor byte) * prime, mod 2^64. *)
let fold_byte t b =
  let lo = t.h_lo lxor (b land 0xff) in
  let hi = t.h_hi in
  let p0 = lo * 0x1b3 in
  let mid = (lo * 0x100) + (hi * 0x1b3) + (p0 lsr 32) in
  t.h_lo <- p0 land mask32;
  t.h_hi <- mid land mask32

let fold_string t s =
  for i = 0 to String.length s - 1 do
    fold_byte t (Char.code (String.unsafe_get s i))
  done

let fold_int t n =
  for shift = 0 to 7 do
    fold_byte t ((n lsr (shift * 8)) land 0xff)
  done

let count_by t name n =
  match Hashtbl.find t.counters name with
  | r -> r := !r + n
  | exception Not_found -> Hashtbl.add t.counters name (ref n)

let count t name = count_by t name 1

let event t ~at ~category ~detail =
  count t category;
  fold_int t at;
  fold_string t category;
  fold_string t detail;
  if t.capacity > 0 then begin
    if Queue.length t.log >= t.capacity then begin
      ignore (Queue.pop t.log);
      t.dropped <- t.dropped + 1
    end;
    Queue.push { at; category; detail } t.log
  end
  else t.dropped <- t.dropped + 1

let counter t name =
  match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0

let counters t =
  Hashtbl.fold (fun k v acc -> (k, !v) :: acc) t.counters []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let entries t = List.of_seq (Queue.to_seq t.log)
let dropped t = t.dropped
let hash t =
  Int64.logor
    (Int64.shift_left (Int64.of_int t.h_hi) 32)
    (Int64.of_int t.h_lo)

let clear t =
  Hashtbl.reset t.counters;
  Queue.clear t.log;
  t.dropped <- 0;
  t.h_hi <- fnv_offset_hi;
  t.h_lo <- fnv_offset_lo
