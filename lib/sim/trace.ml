type entry = { at : Time.t; category : string; detail : string }

type t = {
  counters : (string, int ref) Hashtbl.t;
  log : entry Queue.t;
  capacity : int;
  mutable dropped : int;
  mutable hash : int64;
}

(* FNV-1a, 64-bit.  The running hash folds in every event (whether or not
   the bounded log retained it), so two runs with identical event streams
   hash identically even after the log wraps. *)
let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let fnv_byte h b = Int64.mul (Int64.logxor h (Int64.of_int (b land 0xff))) fnv_prime

let fnv_string h s =
  let h = ref h in
  String.iter (fun c -> h := fnv_byte !h (Char.code c)) s;
  !h

let fnv_int h n =
  let h = ref h in
  for shift = 0 to 7 do
    h := fnv_byte !h ((n lsr (shift * 8)) land 0xff)
  done;
  !h

let create ?(log_capacity = 4096) () =
  {
    counters = Hashtbl.create 32;
    log = Queue.create ();
    capacity = log_capacity;
    dropped = 0;
    hash = fnv_offset;
  }

let count_by t name n =
  match Hashtbl.find_opt t.counters name with
  | Some r -> r := !r + n
  | None -> Hashtbl.add t.counters name (ref n)

let count t name = count_by t name 1

let event t ~at ~category ~detail =
  count t category;
  t.hash <- fnv_string (fnv_string (fnv_int t.hash at) category) detail;
  if t.capacity > 0 then begin
    if Queue.length t.log >= t.capacity then begin
      ignore (Queue.pop t.log);
      t.dropped <- t.dropped + 1
    end;
    Queue.push { at; category; detail } t.log
  end
  else t.dropped <- t.dropped + 1

let counter t name =
  match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0

let counters t =
  Hashtbl.fold (fun k v acc -> (k, !v) :: acc) t.counters []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let entries t = List.of_seq (Queue.to_seq t.log)
let dropped t = t.dropped
let hash t = t.hash

let clear t =
  Hashtbl.reset t.counters;
  Queue.clear t.log;
  t.dropped <- 0;
  t.hash <- fnv_offset
