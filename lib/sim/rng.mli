(** Deterministic, splittable pseudo-random number generator.

    Every source of randomness in the simulator (traffic generators, loss
    processes, congestion dynamics) draws from an {!t}.  The generator is
    SplitMix64: fast, statistically adequate for simulation, and
    {e splittable} — [split] derives an independent stream, so concurrent
    model components can be seeded from one master seed without
    correlating, and every experiment is reproducible from its seed. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] is a fresh generator determined by [seed]. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    independent of the remainder of [t]'s stream. *)

val split_ix : t -> int -> t
(** [split_ix t i] derives the [i]th independent stream from [t]'s
    current state {e without} advancing [t]: a pure function of
    [(state, i)].  Campaign task [i] seeds itself with
    [split_ix master i], so parallel tasks never share or reseed a
    common generator, and the derived stream is identical however many
    other tasks ran first.  [i] must be non-negative
    ([Invalid_argument]). *)

val copy : t -> t
(** [copy t] is a generator that will produce the same stream as [t]. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  [bound] must be positive. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val uniform : t -> float -> float -> float
(** [uniform t lo hi] is uniform in [\[lo, hi)]. *)

val bool : t -> bool
(** Fair coin. *)

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p]. *)

val exponential : t -> mean:float -> float
(** Exponentially distributed sample with the given mean. *)

val geometric : t -> p:float -> int
(** Number of Bernoulli([p]) failures before the first success; [>= 0]. *)

val gaussian : t -> mu:float -> sigma:float -> float
(** Normally distributed sample (Box–Muller). *)

val pareto : t -> shape:float -> scale:float -> float
(** Pareto sample — heavy-tailed; used for bursty traffic sizes. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
