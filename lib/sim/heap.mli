(** Imperative binary min-heap keyed by integer priorities.

    Used as the ordering tiers of the discrete-event {!Engine} (the
    near-horizon ready queue and the far-future overflow tier of the
    timer wheel).  Entries are stored in flat parallel arrays — one push
    allocates nothing beyond occasional geometric growth, and the
    [top_key]/[top_value]/[drop_top] path pops without materializing an
    option or a tuple.

    Ties are broken by a sequence number: either the internal push
    counter (so same-key entries come out first-in first-out) or an
    explicit sequence supplied via {!push_seq}, which lets a client
    impose one global FIFO order across several heaps. *)

type 'a t
(** A heap holding values of type ['a]. *)

val create : unit -> 'a t
(** [create ()] is an empty heap. *)

val is_empty : 'a t -> bool
(** [is_empty h] is [true] iff [h] holds no element. *)

val length : 'a t -> int
(** Number of elements currently stored. *)

val push : 'a t -> key:int -> 'a -> unit
(** [push h ~key v] inserts [v] with priority [key].  Tie-break order is
    the push order. *)

val push_seq : 'a t -> key:int -> seq:int -> 'a -> unit
(** [push_seq h ~key ~seq v] inserts [v] with priority [key] and explicit
    tie-break sequence [seq].  Among equal keys, lower [seq] pops first.
    Mixing with {!push} is allowed but then tie-break order mixes the two
    numbering schemes. *)

val peek : 'a t -> (int * 'a) option
(** [peek h] is the minimum binding, without removing it. *)

val pop : 'a t -> (int * 'a) option
(** [pop h] removes and returns the minimum binding.  Among equal keys,
    the lowest-sequence binding is returned first. *)

val top_key : 'a t -> int
(** Key of the minimum binding without allocation.  Raises
    [Invalid_argument] on an empty heap — check {!is_empty} first on hot
    paths. *)

val top_seq : 'a t -> int
(** Sequence number of the minimum binding.  Raises on empty. *)

val top_value : 'a t -> 'a
(** Value of the minimum binding without allocation.  Raises on empty. *)

val drop_top : 'a t -> unit
(** Remove the minimum binding without returning it.  Raises on empty.
    [top_key h, top_value h] followed by [drop_top h] is the
    allocation-free equivalent of [pop h]. *)

val filter_in_place : 'a t -> f:(int -> int -> 'a -> bool) -> unit
(** [filter_in_place h ~f] drops every entry for which
    [f key seq value] is [false] and restores the heap invariant in
    O(n).  Used to compact lazily cancelled events out of the event
    queue. *)

val clear : 'a t -> unit
(** Remove every element. *)

val drain : 'a t -> f:(int -> 'a -> unit) -> unit
(** [drain h ~f] pops every element in priority order, applying [f]. *)
