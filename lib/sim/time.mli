(** Simulation time.

    Time is represented as an integer number of nanoseconds since the start
    of the simulation.  All of ADAPTIVE's simulated clocks, timers, delays
    and rate computations use this representation, which is exact,
    totally ordered, and cheap to compare. *)

type t = int
(** Nanoseconds since simulation start. *)

val zero : t
(** The simulation epoch. *)

val ns : int -> t
(** [ns n] is [n] nanoseconds. *)

val us : int -> t
(** [us n] is [n] microseconds. *)

val ms : int -> t
(** [ms n] is [n] milliseconds. *)

val sec : float -> t
(** [sec s] is [s] seconds, rounded to the nearest nanosecond. *)

val minutes : int -> t
(** [minutes n] is [n] minutes. *)

val to_sec : t -> float
(** [to_sec t] is [t] expressed in seconds. *)

val to_ms : t -> float
(** [to_ms t] is [t] expressed in milliseconds. *)

val to_us : t -> float
(** [to_us t] is [t] expressed in microseconds. *)

val add : t -> t -> t
(** Addition. *)

val diff : t -> t -> t
(** [diff a b] is [a - b]. *)

val max : t -> t -> t
(** Larger of two instants. *)

val min : t -> t -> t
(** Smaller of two instants. *)

val compare : t -> t -> int
(** Total order on instants. *)

val ticks : t -> shift:int -> int
(** [ticks t ~shift] is the index of the [2^shift]-nanosecond bucket
    containing [t] — the slot arithmetic of the timer-wheel scheduler. *)

val of_rate : bits:int -> bps:float -> t
(** [of_rate ~bits ~bps] is the time needed to serialize [bits] bits onto a
    channel of [bps] bits per second. *)

val pp : Format.formatter -> t -> unit
(** Human-readable printer choosing an adequate unit (ns, us, ms, s). *)

val to_string : t -> string
(** [to_string t] is [Format.asprintf "%a" pp t]. *)
