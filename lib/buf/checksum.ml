(* Error-detection codes, computed word-at-a-time.

   Both hot folds stride 8 bytes per iteration with a byte tail:

   - the Internet checksum reads four 16-bit big-endian words per step
     with [Bytes.get_uint16_be] (unboxed immediate ints, unlike the
     boxed [get_int64_*] accessors) and defers the ones'-complement
     folding to the end;
   - CRC-32 uses the slicing-by-8 technique: eight derived 256-entry
     tables let one step consume 8 input bytes with 8 table lookups.
     The state is kept in a plain [int] (the polynomial is 32 bits) so
     the loop never allocates an [Int32].

   The byte-at-a-time folds remain as the tail path, and the test suite
   asserts equality against byte-wise reference implementations on
   randomized inputs, including odd lengths and odd segment splits. *)

(* ------------------------------------------------ Internet checksum *)

(* Ones'-complement sum of 16-bit big-endian words starting on an even
   word boundary within [b.[off .. off+len)]. *)
let internet_fold acc b off len =
  let sum = ref acc in
  let i = ref off in
  let stop = off + len in
  while !i + 8 <= stop do
    sum :=
      !sum
      + Bytes.get_uint16_be b !i
      + Bytes.get_uint16_be b (!i + 2)
      + Bytes.get_uint16_be b (!i + 4)
      + Bytes.get_uint16_be b (!i + 6);
    i := !i + 8
  done;
  while !i + 2 <= stop do
    sum := !sum + Bytes.get_uint16_be b !i;
    i := !i + 2
  done;
  if !i < stop then sum := !sum + (Bytes.get_uint8 b !i lsl 8);
  !sum

let internet_finish sum =
  let s = ref sum in
  while !s lsr 16 <> 0 do
    s := (!s land 0xFFFF) + (!s lsr 16)
  done;
  lnot !s land 0xFFFF

let internet s =
  let b = Bytes.unsafe_of_string s in
  internet_finish (internet_fold 0 b 0 (Bytes.length b))

let internet_msg m =
  (* Pair bytes into 16-bit words across segment boundaries by carrying
     the leftover high byte of an odd-length segment into the next. *)
  let sum = ref 0 in
  let pending = ref (-1) in
  Msg.iter_data m (fun b off len ->
      let i = ref off in
      let stop = off + len in
      if !pending >= 0 && !i < stop then begin
        sum := !sum + ((!pending lsl 8) lor Bytes.get_uint8 b !i);
        pending := -1;
        incr i
      end;
      while !i + 8 <= stop do
        sum :=
          !sum
          + Bytes.get_uint16_be b !i
          + Bytes.get_uint16_be b (!i + 2)
          + Bytes.get_uint16_be b (!i + 4)
          + Bytes.get_uint16_be b (!i + 6);
        i := !i + 8
      done;
      while !i + 2 <= stop do
        sum := !sum + Bytes.get_uint16_be b !i;
        i := !i + 2
      done;
      if !i < stop then pending := Bytes.get_uint8 b !i);
  if !pending >= 0 then sum := !sum + (!pending lsl 8);
  internet_finish !sum

(* ----------------------------------------------- fused running sums *)

(* The running state packs (partial sum, pending high byte) into one
   immediate int: [(sum lsl 9) lor (pending + 1)] with pending in
   [-1, 255].  The sum is partially folded (16-bit chunks re-added) at
   the end of every operation, so the packed value never approaches the
   63-bit range no matter how many bytes are summed.  Keeping the state
   unboxed is what lets the codec thread it through a whole encode pass
   without allocating. *)

let sum_init = 0

let[@inline] pack sum pending =
  let s = (sum land 0xFFFF) + (sum lsr 16) in
  (s lsl 9) lor (pending + 1)

(* Unaligned 16-bit native-endian access without per-word bounds checks;
   every call site validates the whole range up front.  The bulk loops
   below accumulate {e native}-endian word sums and convert once per
   range: the ones'-complement sum is byte-order independent up to a
   byte swap of the folded result (RFC 1071 §2(B)), because the
   end-around-carry addition commutes with byte rotation. *)
external unsafe_get16 : Bytes.t -> int -> int = "%caml_bytes_get16u"

let[@inline] fold16 x =
  let s = ref x in
  while !s lsr 16 <> 0 do
    s := (!s land 0xFFFF) + (!s lsr 16)
  done;
  !s

(* A native-endian word sum's contribution to the big-endian stream sum.
   Congruent mod 0xFFFF rather than equal — the final fold absorbs the
   difference. *)
let[@inline] native_sum_be x =
  if Sys.big_endian then x
  else
    let f = fold16 x in
    ((f land 0xFF) lsl 8) lor (f lsr 8)

let sum_add state b off len =
  if len < 0 || off < 0 || off + len > Bytes.length b then
    invalid_arg "Checksum.sum_add";
  let sum = ref (state lsr 9) in
  let pending = ref ((state land 0x1FF) - 1) in
  let i = ref off in
  let stop = off + len in
  if !pending >= 0 && !i < stop then begin
    sum := !sum + ((!pending lsl 8) lor Bytes.get_uint8 b !i);
    pending := -1;
    incr i
  end;
  let n0 = ref 0 and n1 = ref 0 in
  let lim = stop - 16 in
  while !i <= lim do
    n0 :=
      !n0 + unsafe_get16 b !i
      + unsafe_get16 b (!i + 2)
      + unsafe_get16 b (!i + 4)
      + unsafe_get16 b (!i + 6);
    n1 :=
      !n1
      + unsafe_get16 b (!i + 8)
      + unsafe_get16 b (!i + 10)
      + unsafe_get16 b (!i + 12)
      + unsafe_get16 b (!i + 14);
    i := !i + 16
  done;
  sum := !sum + native_sum_be (!n0 + !n1);
  while !i + 2 <= stop do
    sum := !sum + Bytes.get_uint16_be b !i;
    i := !i + 2
  done;
  if !i < stop then pending := Bytes.get_uint8 b !i;
  pack !sum !pending

(* Advance the state as if two zero bytes were summed: how a zeroed
   checksum field is folded in without writing zeros into a buffer the
   caller may not own.  Zero bytes contribute nothing to the sum, but
   they do shift word-pairing parity, which [pending] records. *)
let sum_skip2 state =
  let pending = (state land 0x1FF) - 1 in
  if pending < 0 then state
  else
    let sum = (state lsr 9) + (pending lsl 8) in
    pack sum 0

let sum_into state ~src ~src_off ~dst ~dst_off ~len =
  if
    len < 0 || src_off < 0 || dst_off < 0
    || src_off + len > Bytes.length src
    || dst_off + len > Bytes.length dst
  then invalid_arg "Checksum.sum_into";
  let sum = ref (state lsr 9) in
  let pending = ref ((state land 0x1FF) - 1) in
  let i = ref 0 in
  if !pending >= 0 && len > 0 then begin
    let v = Bytes.get_uint8 src src_off in
    Bytes.set_uint8 dst dst_off v;
    sum := !sum + ((!pending lsl 8) lor v);
    pending := -1;
    incr i
  end;
  (* Bulk: one [Bytes.blit] (memcpy) then the word sum over the
     just-written, cache-resident destination.  Interleaving 16-bit
     loads and stores in one loop measures ~2x slower than letting the
     copy run at memcpy speed and folding the sum over hot lines — the
     data is still traversed exactly once at memory-hierarchy cost, with
     no intermediate buffer. *)
  let bulk = (len - !i) land lnot 15 in
  if bulk > 0 then begin
    Bytes.blit src (src_off + !i) dst (dst_off + !i) bulk;
    let n0 = ref 0 and n1 = ref 0 in
    let j = ref (dst_off + !i) in
    let lim = dst_off + !i + bulk - 16 in
    while !j <= lim do
      n0 :=
        !n0 + unsafe_get16 dst !j
        + unsafe_get16 dst (!j + 2)
        + unsafe_get16 dst (!j + 4)
        + unsafe_get16 dst (!j + 6);
      n1 :=
        !n1
        + unsafe_get16 dst (!j + 8)
        + unsafe_get16 dst (!j + 10)
        + unsafe_get16 dst (!j + 12)
        + unsafe_get16 dst (!j + 14);
      j := !j + 16
    done;
    sum := !sum + native_sum_be (!n0 + !n1);
    i := !i + bulk
  end;
  while !i + 2 <= len do
    let w = Bytes.get_uint16_be src (src_off + !i) in
    Bytes.set_uint16_be dst (dst_off + !i) w;
    sum := !sum + w;
    i := !i + 2
  done;
  if !i < len then begin
    let v = Bytes.get_uint8 src (src_off + !i) in
    Bytes.set_uint8 dst (dst_off + !i) v;
    pending := v
  end;
  pack !sum !pending

let sum_finish state =
  let sum = state lsr 9 in
  let pending = (state land 0x1FF) - 1 in
  internet_finish (if pending >= 0 then sum + (pending lsl 8) else sum)

(* --------------------------------------------------------------- CRC *)

let crc_poly = 0xEDB88320

(* Slicing tables: [slice.(k).(v)] is the CRC of byte [v] followed by
   [k] zero bytes.  [slice.(0)] is the classic byte-at-a-time table.
   Built eagerly at module init: a toplevel [lazy] forced from several
   domains at once is unsafe, and parallel campaign workers (lib/fleet)
   all run CRC paths. *)
let slice_tables =
  let t0 =
    Array.init 256 (fun n ->
        let c = ref n in
        for _ = 0 to 7 do
          if !c land 1 <> 0 then c := crc_poly lxor (!c lsr 1)
          else c := !c lsr 1
        done;
        !c)
  in
  let tables = Array.make 8 t0 in
  for k = 1 to 7 do
    let prev = tables.(k - 1) in
    tables.(k) <-
      Array.init 256 (fun n -> t0.(prev.(n) land 0xFF) lxor (prev.(n) lsr 8))
  done;
  tables

let crc32_fold_int acc b off len =
  let tables = slice_tables in
  let t0 = tables.(0)
  and t1 = tables.(1)
  and t2 = tables.(2)
  and t3 = tables.(3)
  and t4 = tables.(4)
  and t5 = tables.(5)
  and t6 = tables.(6)
  and t7 = tables.(7) in
  let c = ref acc in
  let i = ref off in
  let stop = off + len in
  while !i + 8 <= stop do
    let one =
      !c
      lxor (Bytes.get_uint16_le b !i lor (Bytes.get_uint16_le b (!i + 2) lsl 16))
    in
    let two =
      Bytes.get_uint16_le b (!i + 4) lor (Bytes.get_uint16_le b (!i + 6) lsl 16)
    in
    c :=
      t7.(one land 0xFF)
      lxor t6.((one lsr 8) land 0xFF)
      lxor t5.((one lsr 16) land 0xFF)
      lxor t4.((one lsr 24) land 0xFF)
      lxor t3.(two land 0xFF)
      lxor t2.((two lsr 8) land 0xFF)
      lxor t1.((two lsr 16) land 0xFF)
      lxor t0.((two lsr 24) land 0xFF);
    i := !i + 8
  done;
  while !i < stop do
    c := t0.((!c lxor Bytes.get_uint8 b !i) land 0xFF) lxor (!c lsr 8);
    incr i
  done;
  !c

let crc32 s =
  let b = Bytes.unsafe_of_string s in
  Int32.of_int (crc32_fold_int 0xFFFFFFFF b 0 (Bytes.length b) lxor 0xFFFFFFFF)

let crc32_msg m =
  let acc = ref 0xFFFFFFFF in
  Msg.iter_data m (fun b off len -> acc := crc32_fold_int !acc b off len);
  Int32.of_int (!acc lxor 0xFFFFFFFF)

(* ------------------------------------------------------------- Adler *)

let adler32 s =
  let modulus = 65521 in
  let a = ref 1 and b = ref 0 in
  String.iter
    (fun c ->
      a := (!a + Char.code c) mod modulus;
      b := (!b + !a) mod modulus)
    s;
  Int32.logor (Int32.shift_left (Int32.of_int !b) 16) (Int32.of_int !a)
