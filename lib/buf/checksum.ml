(* Error-detection codes, computed word-at-a-time.

   Both hot folds stride 8 bytes per iteration with a byte tail:

   - the Internet checksum reads four 16-bit big-endian words per step
     with [Bytes.get_uint16_be] (unboxed immediate ints, unlike the
     boxed [get_int64_*] accessors) and defers the ones'-complement
     folding to the end;
   - CRC-32 uses the slicing-by-8 technique: eight derived 256-entry
     tables let one step consume 8 input bytes with 8 table lookups.
     The state is kept in a plain [int] (the polynomial is 32 bits) so
     the loop never allocates an [Int32].

   The byte-at-a-time folds remain as the tail path, and the test suite
   asserts equality against byte-wise reference implementations on
   randomized inputs, including odd lengths and odd segment splits. *)

(* ------------------------------------------------ Internet checksum *)

(* Ones'-complement sum of 16-bit big-endian words starting on an even
   word boundary within [b.[off .. off+len)]. *)
let internet_fold acc b off len =
  let sum = ref acc in
  let i = ref off in
  let stop = off + len in
  while !i + 8 <= stop do
    sum :=
      !sum
      + Bytes.get_uint16_be b !i
      + Bytes.get_uint16_be b (!i + 2)
      + Bytes.get_uint16_be b (!i + 4)
      + Bytes.get_uint16_be b (!i + 6);
    i := !i + 8
  done;
  while !i + 2 <= stop do
    sum := !sum + Bytes.get_uint16_be b !i;
    i := !i + 2
  done;
  if !i < stop then sum := !sum + (Bytes.get_uint8 b !i lsl 8);
  !sum

let internet_finish sum =
  let s = ref sum in
  while !s lsr 16 <> 0 do
    s := (!s land 0xFFFF) + (!s lsr 16)
  done;
  lnot !s land 0xFFFF

let internet s =
  let b = Bytes.unsafe_of_string s in
  internet_finish (internet_fold 0 b 0 (Bytes.length b))

let internet_msg m =
  (* Pair bytes into 16-bit words across segment boundaries by carrying
     the leftover high byte of an odd-length segment into the next. *)
  let sum = ref 0 in
  let pending = ref (-1) in
  Msg.iter_data m (fun b off len ->
      let i = ref off in
      let stop = off + len in
      if !pending >= 0 && !i < stop then begin
        sum := !sum + ((!pending lsl 8) lor Bytes.get_uint8 b !i);
        pending := -1;
        incr i
      end;
      while !i + 8 <= stop do
        sum :=
          !sum
          + Bytes.get_uint16_be b !i
          + Bytes.get_uint16_be b (!i + 2)
          + Bytes.get_uint16_be b (!i + 4)
          + Bytes.get_uint16_be b (!i + 6);
        i := !i + 8
      done;
      while !i + 2 <= stop do
        sum := !sum + Bytes.get_uint16_be b !i;
        i := !i + 2
      done;
      if !i < stop then pending := Bytes.get_uint8 b !i);
  if !pending >= 0 then sum := !sum + (!pending lsl 8);
  internet_finish !sum

(* --------------------------------------------------------------- CRC *)

let crc_poly = 0xEDB88320

(* Slicing tables: [slice.(k).(v)] is the CRC of byte [v] followed by
   [k] zero bytes.  [slice.(0)] is the classic byte-at-a-time table.
   Built eagerly at module init: a toplevel [lazy] forced from several
   domains at once is unsafe, and parallel campaign workers (lib/fleet)
   all run CRC paths. *)
let slice_tables =
  let t0 =
    Array.init 256 (fun n ->
        let c = ref n in
        for _ = 0 to 7 do
          if !c land 1 <> 0 then c := crc_poly lxor (!c lsr 1)
          else c := !c lsr 1
        done;
        !c)
  in
  let tables = Array.make 8 t0 in
  for k = 1 to 7 do
    let prev = tables.(k - 1) in
    tables.(k) <-
      Array.init 256 (fun n -> t0.(prev.(n) land 0xFF) lxor (prev.(n) lsr 8))
  done;
  tables

let crc32_fold_int acc b off len =
  let tables = slice_tables in
  let t0 = tables.(0)
  and t1 = tables.(1)
  and t2 = tables.(2)
  and t3 = tables.(3)
  and t4 = tables.(4)
  and t5 = tables.(5)
  and t6 = tables.(6)
  and t7 = tables.(7) in
  let c = ref acc in
  let i = ref off in
  let stop = off + len in
  while !i + 8 <= stop do
    let one =
      !c
      lxor (Bytes.get_uint16_le b !i lor (Bytes.get_uint16_le b (!i + 2) lsl 16))
    in
    let two =
      Bytes.get_uint16_le b (!i + 4) lor (Bytes.get_uint16_le b (!i + 6) lsl 16)
    in
    c :=
      t7.(one land 0xFF)
      lxor t6.((one lsr 8) land 0xFF)
      lxor t5.((one lsr 16) land 0xFF)
      lxor t4.((one lsr 24) land 0xFF)
      lxor t3.(two land 0xFF)
      lxor t2.((two lsr 8) land 0xFF)
      lxor t1.((two lsr 16) land 0xFF)
      lxor t0.((two lsr 24) land 0xFF);
    i := !i + 8
  done;
  while !i < stop do
    c := t0.((!c lxor Bytes.get_uint8 b !i) land 0xFF) lxor (!c lsr 8);
    incr i
  done;
  !c

let crc32 s =
  let b = Bytes.unsafe_of_string s in
  Int32.of_int (crc32_fold_int 0xFFFFFFFF b 0 (Bytes.length b) lxor 0xFFFFFFFF)

let crc32_msg m =
  let acc = ref 0xFFFFFFFF in
  Msg.iter_data m (fun b off len -> acc := crc32_fold_int !acc b off len);
  Int32.of_int (!acc lxor 0xFFFFFFFF)

(* ------------------------------------------------------------- Adler *)

let adler32 s =
  let modulus = 65521 in
  let a = ref 1 and b = ref 0 in
  String.iter
    (fun c ->
      a := (!a + Char.code c) mod modulus;
      b := (!b + !a) mod modulus)
    s;
  Int32.logor (Int32.shift_left (Int32.of_int !b) 16) (Int32.of_int !a)
