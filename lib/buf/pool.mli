(** Fixed-size buffer pool.

    MANTTS negotiates buffer space per session; the pool models that
    resource.  Allocation failures are how "insufficient buffer space"
    conditions reach the reconfiguration policies (e.g. a receiver whose
    pool shrinks triggers the application callback path of §4.1.2). *)

type t
(** A pool of equally sized buffers. *)

val create : buffers:int -> size:int -> t
(** [create ~buffers ~size] holds [buffers] buffers of [size] bytes. *)

val buffer_size : t -> int
(** Size of each buffer in bytes. *)

val capacity : t -> int
(** Total number of buffers. *)

val available : t -> int
(** Buffers currently free.  O(1): the free count is tracked in a
    mutable field rather than recomputed from the free list. *)

val in_use : t -> int
(** Buffers currently allocated. *)

val alloc : t -> Bytes.t option
(** Take a buffer, or [None] when exhausted (counted as a miss). *)

val free : t -> Bytes.t -> unit
(** Return a buffer to the pool.  O(1).  Raises [Invalid_argument] on a
    buffer of the wrong size or when the pool is already full.  A buffer
    returned while the pool is above capacity (after a shrinking
    {!resize}) is dropped and counted by {!free_discarded}. *)

val resize : t -> buffers:int -> unit
(** Change the pool capacity (renegotiated buffer space).  Shrinking below
    the number of in-use buffers keeps those buffers alive; they simply may
    not all be returnable until capacity grows again. *)

val misses : t -> int
(** Number of failed allocations since creation. *)

val allocations : t -> int
(** Number of successful allocations since creation. *)

val free_discarded : t -> int
(** Number of returned buffers dropped because the pool was already at
    capacity when they came back. *)

(** {2 Leases}

    The wire-true data path hands one physical buffer to multiple
    consumers (multicast replicates at branch points, so several
    deliveries may read the same frame).  A lease is a reference-counted
    claim on a pool buffer: the buffer returns to the free list exactly
    when the last holder releases, which is the "buffer ownership returns
    to the pool at delivery" rule of the wire path. *)

type lease
(** A reference-counted claim on a buffer. *)

val lease : t -> min_bytes:int -> lease
(** [lease t ~min_bytes] takes a buffer able to hold [min_bytes] bytes,
    with an initial reference count of 1.  Pool buffers are reused when
    one is free and large enough (counted by {!lease_hits}); otherwise a
    fresh unpooled buffer is created (counted by {!lease_fresh}, and by
    {!misses} when the pool was simply empty).  Unpooled buffers are
    garbage-collected on final release rather than returned. *)

val lease_buf : lease -> Bytes.t
(** The leased buffer.  Raises [Invalid_argument] after the final
    release — a use-after-free of the wire frame. *)

val lease_refs : lease -> int
(** Current reference count (0 after the final release). *)

val retain : lease -> unit
(** Add a holder.  Raises [Invalid_argument] after the final release. *)

val release : t -> lease -> unit
(** Drop one holder; the last release returns a pooled buffer to the
    free list.  Raises [Invalid_argument] when the lease was already
    fully released (a double free). *)

val lease_hits : t -> int
(** Leases served from the pool's free list. *)

val lease_fresh : t -> int
(** Leases that had to create a fresh buffer (pool exhausted or the
    request exceeded the pool's buffer size). *)
