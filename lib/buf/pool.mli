(** Fixed-size buffer pool.

    MANTTS negotiates buffer space per session; the pool models that
    resource.  Allocation failures are how "insufficient buffer space"
    conditions reach the reconfiguration policies (e.g. a receiver whose
    pool shrinks triggers the application callback path of §4.1.2). *)

type t
(** A pool of equally sized buffers. *)

val create : buffers:int -> size:int -> t
(** [create ~buffers ~size] holds [buffers] buffers of [size] bytes. *)

val buffer_size : t -> int
(** Size of each buffer in bytes. *)

val capacity : t -> int
(** Total number of buffers. *)

val available : t -> int
(** Buffers currently free.  O(1): the free count is tracked in a
    mutable field rather than recomputed from the free list. *)

val in_use : t -> int
(** Buffers currently allocated. *)

val alloc : t -> Bytes.t option
(** Take a buffer, or [None] when exhausted (counted as a miss). *)

val free : t -> Bytes.t -> unit
(** Return a buffer to the pool.  O(1).  Raises [Invalid_argument] on a
    buffer of the wrong size or when the pool is already full.  A buffer
    returned while the pool is above capacity (after a shrinking
    {!resize}) is dropped and counted by {!free_discarded}. *)

val resize : t -> buffers:int -> unit
(** Change the pool capacity (renegotiated buffer space).  Shrinking below
    the number of in-use buffers keeps those buffers alive; they simply may
    not all be returnable until capacity grows again. *)

val misses : t -> int
(** Number of failed allocations since creation. *)

val allocations : t -> int
(** Number of successful allocations since creation. *)

val free_discarded : t -> int
(** Number of returned buffers dropped because the pool was already at
    capacity when they came back. *)
