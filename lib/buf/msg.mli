(** Message buffers — the [TKO_Message] analog.

    A message is logically divided into a {e header region} (a stack of
    protocol headers, outermost first) and a {e data region} (a list of
    byte segments).  The representation is designed so that the operations
    protocol layers perform constantly — prepending a header
    ([TKO_Message::push]), stripping one ([TKO_Message::pop]), copying a
    message between layers, fragmenting to an MTU and reassembling — do
    {e not} touch payload bytes.  Payload bytes are shared between copies
    and fragments ("lazy copying"); the module counts every physical byte
    actually moved, so the throughput-preservation experiments can charge
    memory-to-memory copy costs precisely. *)

type t
(** A message. *)

val create : int -> t
(** [create n] is a message with [n] zero bytes of data and no headers. *)

val of_string : string -> t
(** Message whose data region holds the bytes of the string. *)

val of_bytes : Bytes.t -> t
(** Message sharing (not copying) the given bytes as its data region. *)

val of_bytes_slice : Bytes.t -> off:int -> len:int -> t
(** Message sharing [len] bytes of [b] starting at [off] — the zero-copy
    view a wire-format decoder yields over a received frame.  No bytes
    move; the message aliases the buffer, so it is only valid while the
    buffer's owner keeps the bytes intact (see {!detach}).  Raises
    [Invalid_argument] on an out-of-range slice. *)

val data_length : t -> int
(** Bytes in the data region.  O(1): the length is cached in the message
    record (the segment list is never mutated in place, so the cache
    cannot go stale) rather than re-folded over the segments. *)

val header_length : t -> int
(** Bytes in the header region (sum of pushed headers).  O(1): maintained
    incrementally by {!push}/{!pop}. *)

val total_length : t -> int
(** [header_length m + data_length m] — what goes on the wire.  O(1). *)

val push : t -> string -> unit
(** [push m h] prepends header [h] as the new outermost header.  O(1),
    copies only the header bytes. *)

val pop : t -> string option
(** [pop m] removes and returns the outermost header, or [None] if the
    header region is empty.  O(1). *)

val peek_header : t -> string option
(** Outermost header without removing it. *)

val copy : t -> t
(** Logical copy.  Headers are copied (they are small and mutable per
    layer); data segments are shared.  No payload bytes move. *)

val detach : t -> t
(** [detach m] is a message with the same contents whose data region is a
    private single-segment buffer — one counted physical copy.  This is
    how a consumer keeps payload bytes past the lifetime of a shared
    buffer it does not own (e.g. a {!of_bytes_slice} view over a pooled
    wire frame that returns to the pool at delivery). *)

val split : t -> int -> t * t
(** [split m n] divides the {e data region}: the first result carries the
    first [n] data bytes, the second the rest.  Headers stay with the
    first part.  Payload bytes are shared, not copied.  Raises
    [Invalid_argument] if [n] is negative or exceeds [data_length m]. *)

val fragment : t -> mtu:int -> t list
(** [fragment m ~mtu] cuts the data region into pieces of at most [mtu]
    bytes (headers are not replicated — each fragment is headerless).
    Shares payload bytes. *)

val concat : t list -> t
(** [concat ms] is a headerless message whose data region is the
    concatenation of all the inputs' data regions (reassembly).  Shares
    payload bytes. *)

val to_string : t -> string
(** Materialize the whole message, headers then data.  This is a physical
    copy and is counted as one. *)

val data_to_string : t -> string
(** Materialize only the data region (counted as a physical copy). *)

val blit_data : t -> Bytes.t -> int -> unit
(** [blit_data m dst off] physically copies the data region into [dst] at
    [off] (counted). *)

val iter_data : t -> (Bytes.t -> int -> int -> unit) -> unit
(** Iterate over the underlying data segments without copying. *)

val physical_copies : unit -> int
(** Number of physical copy operations performed since the last
    {!reset_copy_counters}. *)

val copied_bytes : unit -> int
(** Number of payload bytes physically moved since the last reset. *)

val reset_copy_counters : unit -> unit
(** Zero both copy counters. *)
