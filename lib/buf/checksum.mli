(** Error-detection codes used by the reliability-management mechanisms.

    The paper's error-detection component chooses among "none", the
    Internet 16-bit ones'-complement checksum (cheap, weak) and CRC-32
    (costlier, strong).  All functions operate on strings; messages are
    checksummed via {!Msg.iter_data} without materializing them. *)

val internet : string -> int
(** 16-bit ones'-complement Internet checksum (RFC 1071). *)

val internet_msg : Msg.t -> int
(** Internet checksum over a message's data region, zero-copy. *)

(** {2 Fused running sums}

    The wire-true data path computes the Internet checksum {e during} the
    copy pass — the simultaneous-transmission-and-checksum property the
    paper claims for trailer checksums (§2.2(C)).  The running state is a
    plain immediate [int] packing the partial sum together with the
    pending high byte of an odd-length prefix, so a whole encode pass can
    thread it without allocating.  Treat the value as opaque: build it
    with {!sum_init}, advance it with the [sum_*] operations in wire
    order, and extract the checksum with {!sum_finish}. *)

val sum_init : int
(** Empty running state (sum 0, even byte parity). *)

val sum_add : int -> Bytes.t -> int -> int -> int
(** [sum_add state b off len] folds [b.[off .. off+len)] into the running
    sum without copying.  Byte parity carries across calls: an odd-length
    range leaves its trailing byte pending, to be paired with the first
    byte of the next range.  Raises [Invalid_argument] on out-of-range
    slices. *)

val sum_skip2 : int -> int
(** Advance the state as if two zero bytes were summed — how a zeroed
    checksum field is folded in without touching the buffer. *)

val sum_into :
  int ->
  src:Bytes.t ->
  src_off:int ->
  dst:Bytes.t ->
  dst_off:int ->
  len:int ->
  int
(** [sum_into state ~src ~src_off ~dst ~dst_off ~len] copies [len] bytes
    from [src] to [dst] {e and} folds them into the running sum in the
    same pass — one traversal where blit-then-checksum needs two.
    Equivalent to [Bytes.blit] followed by {!sum_add} over the copied
    range (the test suite asserts this on random inputs).  Raises
    [Invalid_argument] on out-of-range slices. *)

val sum_finish : int -> int
(** Finalize the running state into the 16-bit Internet checksum.  Equal
    to {!internet} over the concatenation of everything summed. *)

val crc32 : string -> int32
(** CRC-32 (IEEE 802.3 polynomial, reflected). *)

val crc32_msg : Msg.t -> int32
(** CRC-32 over a message's data region, zero-copy. *)

val adler32 : string -> int32
(** Adler-32 rolling checksum. *)
