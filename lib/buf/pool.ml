type t = {
  size : int;
  mutable cap : int;
  mutable free_list : Bytes.t list;
  mutable free_count : int; (* length of [free_list], maintained so that
                               [available] and [free] stay O(1) *)
  mutable used : int;
  mutable miss_count : int;
  mutable alloc_count : int;
  mutable discard_count : int;
  mutable lease_hit_count : int;
  mutable lease_fresh_count : int;
}

let create ~buffers ~size =
  if buffers < 0 || size <= 0 then invalid_arg "Pool.create";
  {
    size;
    cap = buffers;
    free_list = List.init buffers (fun _ -> Bytes.create size);
    free_count = buffers;
    used = 0;
    miss_count = 0;
    alloc_count = 0;
    discard_count = 0;
    lease_hit_count = 0;
    lease_fresh_count = 0;
  }

let buffer_size t = t.size
let capacity t = t.cap
let available t = t.free_count
let in_use t = t.used

let alloc t =
  match t.free_list with
  | [] ->
    t.miss_count <- t.miss_count + 1;
    None
  | b :: rest ->
    t.free_list <- rest;
    t.free_count <- t.free_count - 1;
    t.used <- t.used + 1;
    t.alloc_count <- t.alloc_count + 1;
    Some b

let free t b =
  if Bytes.length b <> t.size then invalid_arg "Pool.free: wrong buffer size";
  if t.used = 0 then invalid_arg "Pool.free: pool already full";
  t.used <- t.used - 1;
  if t.free_count + t.used < t.cap then begin
    t.free_list <- b :: t.free_list;
    t.free_count <- t.free_count + 1
  end
  else t.discard_count <- t.discard_count + 1

let resize t ~buffers =
  if buffers < 0 then invalid_arg "Pool.resize";
  let target_free = max 0 (buffers - t.used) in
  if target_free > t.free_count then
    t.free_list <-
      List.init (target_free - t.free_count) (fun _ -> Bytes.create t.size)
      @ t.free_list
  else if target_free < t.free_count then begin
    let rec take n = function
      | [] -> []
      | _ :: rest when n > 0 -> take (n - 1) rest
      | l -> l
    in
    t.free_list <- take (t.free_count - target_free) t.free_list
  end;
  t.free_count <- target_free;
  t.cap <- buffers

let misses t = t.miss_count
let allocations t = t.alloc_count
let free_discarded t = t.discard_count

(* ------------------------------------------------------------ leases *)

type lease = { lbuf : Bytes.t; mutable refs : int; pooled : bool }

let lease t ~min_bytes =
  if min_bytes < 0 then invalid_arg "Pool.lease";
  if min_bytes <= t.size then
    match alloc t with
    | Some b ->
      t.lease_hit_count <- t.lease_hit_count + 1;
      { lbuf = b; refs = 1; pooled = true }
    | None ->
      t.lease_fresh_count <- t.lease_fresh_count + 1;
      { lbuf = Bytes.create t.size; refs = 1; pooled = false }
  else begin
    (* Oversized request: the pool's buffers cannot hold it. *)
    t.lease_fresh_count <- t.lease_fresh_count + 1;
    { lbuf = Bytes.create min_bytes; refs = 1; pooled = false }
  end

let lease_buf l =
  if l.refs <= 0 then invalid_arg "Pool.lease_buf: lease already released";
  l.lbuf

let lease_refs l = l.refs

let retain l =
  if l.refs <= 0 then invalid_arg "Pool.retain: lease already released";
  l.refs <- l.refs + 1

let release t l =
  if l.refs <= 0 then invalid_arg "Pool.release: lease already released";
  l.refs <- l.refs - 1;
  if l.refs = 0 && l.pooled then free t l.lbuf

let lease_hits t = t.lease_hit_count
let lease_fresh t = t.lease_fresh_count
