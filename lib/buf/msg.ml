type segment = { base : Bytes.t; off : int; len : int }

(* [dlen] and [hlen] cache the region lengths.  They stay valid because
   the segment list is never mutated in place — every operation that
   changes the data region builds a fresh record (and knows the new
   length in O(1)) — and the header stack only changes through
   [push]/[pop], which adjust [hlen] incrementally. *)
type t = {
  mutable headers : string list;
  mutable hlen : int;
  data : segment list;
  dlen : int;
}

(* Atomic: process-wide copy accounting must not tear or lose updates
   when parallel campaign tasks (lib/fleet) run the copy paths. *)
let copies_counter = Atomic.make 0
let bytes_counter = Atomic.make 0

let charge_copy n =
  Atomic.incr copies_counter;
  ignore (Atomic.fetch_and_add bytes_counter n)

let physical_copies () = Atomic.get copies_counter
let copied_bytes () = Atomic.get bytes_counter

let reset_copy_counters () =
  Atomic.set copies_counter 0;
  Atomic.set bytes_counter 0

let of_bytes b =
  let n = Bytes.length b in
  { headers = []; hlen = 0; data = [ { base = b; off = 0; len = n } ]; dlen = n }

let create n = of_bytes (Bytes.make n '\000')
let of_string s = of_bytes (Bytes.of_string s)

let of_bytes_slice b ~off ~len =
  if off < 0 || len < 0 || off + len > Bytes.length b then
    invalid_arg "Msg.of_bytes_slice";
  { headers = []; hlen = 0; data = [ { base = b; off; len } ]; dlen = len }
let data_length m = m.dlen
let header_length m = m.hlen
let total_length m = m.hlen + m.dlen

let push m h =
  m.headers <- h :: m.headers;
  m.hlen <- m.hlen + String.length h

let pop m =
  match m.headers with
  | [] -> None
  | h :: rest ->
    m.headers <- rest;
    m.hlen <- m.hlen - String.length h;
    Some h

let peek_header m = match m.headers with [] -> None | h :: _ -> Some h

let copy m = { headers = m.headers; hlen = m.hlen; data = m.data; dlen = m.dlen }

let split m n =
  if n < 0 || n > m.dlen then invalid_arg "Msg.split: index out of range";
  let rec take acc remaining segs =
    if remaining = 0 then (List.rev acc, segs)
    else
      match segs with
      | [] -> (List.rev acc, [])
      | s :: rest ->
        if s.len <= remaining then take (s :: acc) (remaining - s.len) rest
        else
          let first = { s with len = remaining } in
          let second = { s with off = s.off + remaining; len = s.len - remaining } in
          (List.rev (first :: acc), second :: rest)
  in
  let front, back = take [] n m.data in
  ( { headers = m.headers; hlen = m.hlen; data = front; dlen = n },
    { headers = []; hlen = 0; data = back; dlen = m.dlen - n } )

let fragment m ~mtu =
  if mtu <= 0 then invalid_arg "Msg.fragment: non-positive MTU";
  let rec cut acc rest =
    if rest.dlen = 0 then List.rev acc
    else if rest.dlen <= mtu then
      List.rev ({ headers = []; hlen = 0; data = rest.data; dlen = rest.dlen } :: acc)
    else
      let piece, remainder =
        split { headers = []; hlen = 0; data = rest.data; dlen = rest.dlen } mtu
      in
      cut (piece :: acc) remainder
  in
  cut [] { headers = []; hlen = 0; data = m.data; dlen = m.dlen }

let concat ms =
  {
    headers = [];
    hlen = 0;
    data = List.concat_map (fun m -> m.data) ms;
    dlen = List.fold_left (fun acc m -> acc + m.dlen) 0 ms;
  }

let blit_segments segs dst off =
  let pos = ref off in
  List.iter
    (fun s ->
      Bytes.blit s.base s.off dst !pos s.len;
      pos := !pos + s.len)
    segs

(* One counted physical copy into a private single-segment message: how a
   payload decoded out of a leased wire buffer outlives the lease. *)
let detach m =
  let n = m.dlen in
  let b = Bytes.create n in
  blit_segments m.data b 0;
  charge_copy n;
  { headers = m.headers; hlen = m.hlen; data = [ { base = b; off = 0; len = n } ]; dlen = n }

let data_to_string m =
  let n = m.dlen in
  let b = Bytes.create n in
  blit_segments m.data b 0;
  charge_copy n;
  Bytes.unsafe_to_string b

let to_string m =
  let hl = m.hlen and dl = m.dlen in
  let b = Bytes.create (hl + dl) in
  let pos = ref 0 in
  List.iter
    (fun h ->
      Bytes.blit_string h 0 b !pos (String.length h);
      pos := !pos + String.length h)
    m.headers;
  blit_segments m.data b !pos;
  charge_copy (hl + dl);
  Bytes.unsafe_to_string b

let blit_data m dst off =
  blit_segments m.data dst off;
  charge_copy m.dlen

(* Top-level recursion, not [List.iter] with a wrapper lambda: the
   wire-true encoder runs this per data PDU, and the wrapper closure
   would be the only allocation on that path. *)
let rec iter_segs f = function
  | [] -> ()
  | s :: rest ->
    f s.base s.off s.len;
    iter_segs f rest

let iter_data m f = iter_segs f m.data
